"""File servers: NFS (UDP), DAFS (VI), and Optimistic DAFS.

One handler set serves all five client systems; what differs is the
transport, the reply path (inline copy, scatter/gather inline, or
server-initiated RDMA), and — for ODAFS — exporting cache blocks and
piggybacking remote references on read replies (Section 4.2).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ...fs.disk import Disk
from ...fs.files import FileSystem
from ...hw.host import Host
from ...hw.nic import NotifyMode
from ...hw.tpt import RemoteAccessFault
from ...proto.messaging import GMEndpoint
from ...proto.rpc import RPC_HEADER_BYTES, RPCReply, RPCRequest, RPCServer
from ...proto.udp import UDPStack
from ...proto.vi import VIEndpoint
from ...sim import Counter, trace_emit
from ..delegation import READ, DelegationTable
from ..locks import EXCLUSIVE, LockTable
from .filecache import BlockKey, ServerBlock, ServerFileCache

#: Well-known service ports.
NFS_PORT = 2049
DAFS_PORT = 10


class BaseFileServer:
    """Shared handler logic over an abstract transport."""

    #: Whether read replies carry piggybacked remote references.
    piggyback_refs = False

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, transport, name: str):
        self.host = host
        self.fs = fs
        self.disk = disk
        self.cache = cache
        self.name = name
        self.delegations = DelegationTable()
        self.locks = LockTable(host.sim)
        self.stats = Counter()
        #: Retransmission budget for server-initiated RDMA writes when
        #: fault injection can time them out (0 = fail fast, the benign
        #: default; the injector's resilience layer raises it).
        self.rdma_put_retries = 0
        self.rpc = RPCServer(host, transport, name=name)
        for proc, handler in [
            ("open", self._h_open), ("close", self._h_close),
            ("read", self._h_read), ("write", self._h_write),
            ("getattr", self._h_getattr), ("create", self._h_create),
            ("remove", self._h_remove), ("lookup", self._h_lookup),
            ("read_batch", self._h_read_batch),
            ("lock", self._h_lock), ("unlock", self._h_unlock),
            ("get_refs", self._h_get_refs),
        ]:
            self.rpc.register(proc, self._traced(proc, handler))

    def start(self) -> None:
        self.rpc.start()

    # -- helpers -----------------------------------------------------------

    def _traced(self, proc: str, handler):
        """Wrap a handler with dispatch/reply trace events."""
        def wrapper(srv: RPCServer, request: RPCRequest) -> Generator:
            if self.host.sim.tracer is not None:
                trace_emit(self.host.sim, self.name, "srv-dispatch",
                           proc=proc, xid=request.xid,
                           client=request.client)
            reply = yield from handler(srv, request)
            if self.host.sim.tracer is not None:
                trace_emit(self.host.sim, self.name, "srv-reply",
                           proc=proc, xid=request.xid,
                           bytes=reply.inline_bytes)
            return reply
        return wrapper

    def warm(self, name: str) -> None:
        """Preload every block of ``name`` into the file cache (the
        'file warm in the server cache' setup of Section 5)."""
        for index in range(self.fs.block_count(name)):
            self.cache.insert((name, index),
                              self.fs.block_content(name, index))

    def _get_block(self, key: BlockKey, span=None) -> Generator:
        """Fetch one block through the cache, reading disk on a miss."""
        block = self.cache.lookup(key)
        if block is not None:
            return block
        if span is not None:
            span.mark(self.host.name, "server.cache", miss=True)
        proto = self.host.params.storage
        yield from self.host.cpu.execute(proto.disk_op_us, category="disk")
        yield from self.disk.read(self.cache.block_size)
        if span is not None:
            span.mark(self.host.name, "server.disk")
        data = self.fs.block_content(*key)
        return self.cache.insert(key, data)

    def _finish(self, request: RPCRequest, reply: RPCReply) -> RPCReply:
        """Attach piggybacked delegation recalls for this client."""
        recalls = self.delegations.take_recalls(request.client)
        if recalls:
            reply.meta["recall"] = recalls
        return reply

    def _rdma_completion(self) -> Generator:
        """Host-side handling of a local RDMA completion event."""
        yield from self.host.cpu.poll()

    def _rdma_put_resilient(self, dst: str, addr: int, nbytes: int,
                            data: Any, capability, span=None) -> Generator:
        """Server-initiated RDMA write with bounded retransmission.

        The target is the client's plain registered buffer, so the only
        recoverable failure mode is an injected loss surfacing as an
        initiator timeout; retrying re-sends the whole transfer. Without
        this, one lost ack would kill the serving process and deadlock
        the client (its retransmissions would hit the in-progress entry
        of the duplicate request cache forever).
        """
        attempt = 0
        while True:
            try:
                yield from self.host.nic.rdma_put(
                    dst, addr, nbytes, data=data, capability=capability,
                    span=span)
                return
            except RemoteAccessFault:
                attempt += 1
                if attempt > self.rdma_put_retries:
                    raise
                self.stats.incr("rdma_put_retries")
                if span is not None:
                    span.mark(self.host.name, "server.rdma-retry",
                              attempt=attempt)

    # -- handlers -------------------------------------------------------------

    def _h_open(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        inode = self.fs.lookup(name)
        mode = request.args.get("mode", READ)
        delegated = self.delegations.grant(name, request.client, mode)
        self.stats.incr("opens")
        return self._finish(request, RPCReply(meta={
            "size": inode.size, "mtime": inode.mtime,
            "delegation": delegated,
        }))

    def _h_close(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        self.delegations.release(request.args["name"], request.client)
        self.stats.incr("closes")
        return self._finish(request, RPCReply())

    def _h_getattr(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        inode = self.fs.lookup(name)
        self.stats.incr("getattrs")
        return self._finish(request, RPCReply(meta={
            "size": inode.size, "mtime": inode.mtime}))

    def _h_lookup(self, srv: RPCServer, request: RPCRequest) -> Generator:
        # Directory name lookups need real server processing and are not
        # ORDMA-able (Section 4.2.2) — always a full-cost RPC.
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        self.stats.incr("lookups")
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        return self._finish(request, RPCReply(meta={"found": True}))

    def _h_create(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        self.fs.create(request.args["name"], request.args.get("size", 0))
        self.stats.incr("creates")
        return self._finish(request, RPCReply())

    def _h_remove(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        for index in range(self.fs.block_count(name)):
            self.cache.invalidate((name, index))
        self.fs.remove(name)
        self.stats.incr("removes")
        return self._finish(request, RPCReply())

    def _h_read(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Read: reply inline, inline from registered memory, or by
        server-initiated RDMA write ('direct'), per ``args['mode']``."""
        args = request.args
        name, offset, nbytes = args["name"], args["offset"], args["nbytes"]
        mode = args.get("mode", "inline")
        cpu = self.host.cpu
        proto = self.host.params.proto
        span = request.span
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if span is not None:
            span.mark(self.host.name, "server.fs")
        indices = self.fs.blocks_in_range(name, offset, nbytes)
        blocks: List[ServerBlock] = []
        for index in indices:
            block = yield from self._get_block((name, index), span=span)
            blocks.append(block)
        if len(blocks) > 1:
            # Gathering additional cache blocks into one transfer.
            yield from cpu.execute(0.5 * (len(blocks) - 1), category="fs")
        if span is not None:
            span.mark(self.host.name, "server.cache", blocks=len(blocks))
        payload: Any = (blocks[0].data if len(blocks) == 1
                        else tuple(b.data for b in blocks))
        meta: Dict[str, Any] = {"size": nbytes}
        if self.piggyback_refs:
            refs = []
            for index, block in zip(indices, blocks):
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
            if refs:
                meta["refs"] = refs
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if mode == "direct":
            yield from cpu.execute(proto.rdma_issue_us, category="rdma")
            yield from self._rdma_put_resilient(
                request.client, args["client_addr"], nbytes, payload,
                args.get("client_cap"), span=span)
            yield from self._rdma_completion()
            if span is not None:
                span.mark(self.host.name, "server.rdma", bytes=nbytes)
            self.stats.incr("reads_direct")
            return self._finish(request, RPCReply(meta=meta))
        if mode == "inline":
            # Serving inline from the file cache copies the payload into
            # the communication buffer (the Table 3 'in cache' case) —
        # unless the client asked for scatter/gather DMA straight from
            # the cache pages (the pre-posting reply path).
            if not args.get("sg"):
                yield from cpu.copy(nbytes, cached=False)
                if span is not None:
                    span.mark(self.host.name, "server.copy", bytes=nbytes)
            self.stats.incr("reads_inline")
            return self._finish(request,
                                RPCReply(inline_bytes=nbytes, data=payload,
                                         meta=meta))
        if mode == "inline-mem":
            # Payload already resides in registered communication memory
            # (the Table 3 'in mem.' case): no server-side copy.
            self.stats.incr("reads_inline_mem")
            return self._finish(request,
                                RPCReply(inline_bytes=nbytes, data=payload,
                                         meta=meta))
        return self._finish(request,
                            RPCReply(meta={"rpc_error": f"bad mode {mode}"}))

    def _h_lock(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Advisory whole-file lock (Section 4.2.2: explicit locks restore
        UNIX I/O semantics under mixed ORDMA/RPC access). Blocks until
        granted; FIFO-fair."""
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        mode = request.args.get("lock_mode", EXCLUSIVE)
        grant = self.locks.acquire(name, request.client, mode)
        yield grant
        self.stats.incr("locks")
        return self._finish(request, RPCReply(meta={"locked": name,
                                                    "lock_mode": mode}))

    def _h_unlock(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        try:
            self.locks.release(name, request.client)
        except KeyError:
            return self._finish(request, RPCReply(
                meta={"rpc_error": f"not locked by {request.client}"}))
        self.stats.incr("unlocks")
        return self._finish(request, RPCReply(meta={"unlocked": name}))

    def _h_get_refs(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Eager directory building (Section 4.2 principle (a)): return
        remote references for a file's currently cached blocks in one RPC,
        instead of waiting for per-read piggybacks."""
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        refs = []
        if self.piggyback_refs:
            for index in range(self.fs.block_count(name)):
                block = self.cache.lookup((name, index))
                if block is None:
                    continue
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
            # Assembling the reference list costs the server per entry.
            yield from self.host.cpu.execute(0.05 * len(refs),
                                             category="fs")
        self.stats.incr("get_refs")
        # Each reference is ~32 bytes on the wire.
        return self._finish(request, RPCReply(
            inline_bytes=32 * len(refs),
            meta={"refs": refs, "refs_name": name}))

    def _h_read_batch(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Batch I/O (Section 2.2): one RPC triggers a set of server-issued
        RDMA writes, amortizing the client's per-I/O RPC cost."""
        args = request.args
        name = args["name"]
        cpu = self.host.cpu
        proto = self.host.params.proto
        span = request.span
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if span is not None:
            span.mark(self.host.name, "server.fs")
        total = 0
        for extent in args["extents"]:
            offset, nbytes = extent["offset"], extent["nbytes"]
            yield from cpu.execute(2.0, category="fs")  # per-extent setup
            blocks = []
            for index in self.fs.blocks_in_range(name, offset, nbytes):
                block = yield from self._get_block((name, index), span=span)
                blocks.append(block)
            payload = (blocks[0].data if len(blocks) == 1
                       else tuple(b.data for b in blocks))
            yield from cpu.execute(proto.rdma_issue_us, category="rdma")
            yield from self._rdma_put_resilient(
                request.client, extent["client_addr"], nbytes, payload,
                extent.get("client_cap"), span=span)
            yield from self._rdma_completion()
            if span is not None:
                span.mark(self.host.name, "server.rdma", bytes=nbytes)
            total += nbytes
        self.stats.incr("batch_reads")
        self.stats.incr("read_bytes", total)
        return self._finish(request, RPCReply(meta={"size": total}))

    def _h_write(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Write: payload arrives inline with the request; the server
        copies it into the file cache, updates metadata, and replies.
        (Writes always involve the server CPU — Section 4.2.2.)"""
        args = request.args
        name, offset, nbytes = args["name"], args["offset"], args["nbytes"]
        cpu = self.host.cpu
        proto = self.host.params.proto
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if nbytes > 0:
            yield from cpu.copy(nbytes, cached=False)
        meta: Dict[str, Any] = {}
        refs: List[Tuple[int, Any]] = []
        # An ORDMA write already moved the bytes into the exported block;
        # this RPC settles the metadata (mtime, block status) for those
        # blocks (Section 4.2.2: writes always need the server CPU).
        indices = (args["ordma_blocks"] if "ordma_blocks" in args
                   else self.fs.blocks_in_range(name, offset, nbytes))
        for index in indices:
            data = self.fs.write_block(name, index, now=self.host.sim.now)
            block = self.cache.insert((name, index), data)
            if self.piggyback_refs:
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
        if refs:
            meta["refs"] = refs
        inode = self.fs.lookup(name)
        meta.update({"size": inode.size, "mtime": inode.mtime})
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        return self._finish(request, RPCReply(meta=meta))


class NFSServer(BaseFileServer):
    """NFS-family server over UDP (standard, pre-posting and hybrid
    clients all talk to this one; the request's mode/sg flags select the
    reply path)."""

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, port: int = NFS_PORT):
        stack = UDPStack(host)
        super().__init__(host, fs, disk, cache, stack.socket(port),
                         name=f"{host.name}.nfsd")


class DAFSServer(BaseFileServer):
    """DAFS kernel server over a VI endpoint (Section 5: [21])."""

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, port: int = DAFS_PORT,
                 mode: NotifyMode = NotifyMode.BLOCK,
                 slots: int = GMEndpoint.DEFAULT_SLOTS):
        self.endpoint = VIEndpoint(host, port, mode=mode, slots=slots)
        self.notify_mode = mode
        super().__init__(host, fs, disk, cache, self.endpoint,
                         name=f"{host.name}.dafsd")

    def _rdma_completion(self) -> Generator:
        if self.notify_mode is NotifyMode.BLOCK:
            yield from self.host.cpu.interrupt(
                coalesce_window_us=self.host.params.nic.interrupt_coalesce_us)
            yield from self.host.cpu.wakeup()
        else:
            yield from self.host.cpu.poll()


class ODAFSServer(DAFSServer):
    """Optimistic DAFS server: exported cache + piggybacked references."""

    piggyback_refs = True
