"""File servers: NFS (UDP), DAFS (VI), and Optimistic DAFS.

One handler set serves all five client systems; what differs is the
transport, the reply path (inline copy, scatter/gather inline, or
server-initiated RDMA), and — for ODAFS — exporting cache blocks and
piggybacking remote references on read replies (Section 4.2).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ...fs.disk import Disk
from ...fs.files import FileSystem
from ...hw.host import Host
from ...hw.nic import NotifyMode
from ...hw.tpt import RemoteAccessFault
from ...integrity.checksum import IntegrityError
from ...integrity.scrub import Scrubber
from ...integrity.store import ChecksumStore
from ...proto.messaging import GMEndpoint
from ...proto.rpc import RPC_HEADER_BYTES, RPCReply, RPCRequest, RPCServer
from ...proto.udp import UDPStack
from ...proto.vi import VIEndpoint
from ...sim import Counter, LatencyStats, rate_probe, trace_emit
from ..delegation import READ, DelegationTable
from ..locks import EXCLUSIVE, LockTable
from .filecache import BlockKey, ServerBlock, ServerFileCache

#: Well-known service ports.
NFS_PORT = 2049
DAFS_PORT = 10


class BaseFileServer:
    """Shared handler logic over an abstract transport."""

    #: Whether read replies carry piggybacked remote references.
    piggyback_refs = False

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, transport, name: str):
        self.host = host
        self.fs = fs
        self.disk = disk
        self.cache = cache
        self.name = name
        self.delegations = DelegationTable()
        self.locks = LockTable(host.sim)
        self.stats = Counter()
        #: End-to-end integrity (``params.integrity``): checksums recorded
        #: at write, verified wherever a consumer reads — the server here
        #: for RPC reads, the client for ORDMA reads (via the checksum
        #: piggybacked on each :class:`RemoteRef`). ``None``/empty when
        #: integrity is off, so the default path pays nothing.
        self.checksums: Optional[ChecksumStore] = None
        self.integrity = Counter()
        self.repair_latency = LatencyStats(f"{name}.repair_us")
        self.scrubber: Optional[Scrubber] = None
        ip = host.params.integrity
        if ip.enabled:
            self.checksums = ChecksumStore(fs)
            cache.checksums = self.checksums
            if ip.scrub_interval_us > 0:
                self.scrubber = Scrubber(self)
        #: Retransmission budget for server-initiated RDMA writes when
        #: fault injection can time them out (0 = fail fast, the benign
        #: default; the injector's resilience layer raises it).
        self.rdma_put_retries = 0
        self.rpc = RPCServer(host, transport, name=name)
        for proc, handler in [
            ("open", self._h_open), ("close", self._h_close),
            ("read", self._h_read), ("write", self._h_write),
            ("getattr", self._h_getattr), ("create", self._h_create),
            ("remove", self._h_remove), ("lookup", self._h_lookup),
            ("read_batch", self._h_read_batch),
            ("lock", self._h_lock), ("unlock", self._h_unlock),
            ("get_refs", self._h_get_refs),
        ]:
            self.rpc.register(proc, self._traced(proc, handler))

    def start(self) -> None:
        self.rpc.start()

    # -- helpers -----------------------------------------------------------

    def _traced(self, proc: str, handler):
        """Wrap a handler with dispatch/reply trace events."""
        def wrapper(srv: RPCServer, request: RPCRequest) -> Generator:
            if self.host.sim.tracer is not None:
                trace_emit(self.host.sim, self.name, "srv-dispatch",
                           proc=proc, xid=request.xid,
                           client=request.client)
            reply = yield from handler(srv, request)
            if self.host.sim.tracer is not None:
                trace_emit(self.host.sim, self.name, "srv-reply",
                           proc=proc, xid=request.xid,
                           bytes=reply.inline_bytes)
            return reply
        return wrapper

    def warm(self, name: str) -> None:
        """Preload every block of ``name`` into the file cache (the
        'file warm in the server cache' setup of Section 5)."""
        for index in range(self.fs.block_count(name)):
            self.cache.insert((name, index),
                              self.fs.block_content(name, index))
            if self.checksums is not None:
                self.checksums.record((name, index))

    def _get_block(self, key: BlockKey, span=None) -> Generator:
        """Fetch one block through the cache, reading disk on a miss."""
        block = self.cache.lookup(key)
        if block is not None:
            return block
        if span is not None:
            span.mark(self.host.name, "server.cache", miss=True)
        proto = self.host.params.storage
        yield from self.host.cpu.execute(proto.disk_op_us, category="disk")
        yield from self.disk.read(self.cache.block_size)
        if span is not None:
            span.mark(self.host.name, "server.disk")
        data = self.fs.block_content(*key)
        if self.disk.faults is not None:
            # Bit rot lives on the read path: the platter access above
            # succeeded, but decayed media hands back wrong bytes.
            data = self.disk.faults.bitrot_payload(data)
        return self.cache.insert(key, data)

    def _charge_checksum(self) -> Generator:
        """Model the CPU cost of checksumming one cache block."""
        ip = self.host.params.integrity
        cost = ip.checksum_op_us + self.cache.block_size / ip.checksum_bw
        yield from self.host.cpu.execute(cost, category="integrity")

    def _get_block_verified(self, key: BlockKey, span=None) -> Generator:
        """:meth:`_get_block` plus read-path verification when integrity
        is enabled: a checksum mismatch runs the re-read/repair ladder and
        raises :class:`IntegrityError` only if that too is exhausted."""
        block = yield from self._get_block(key, span=span)
        if self.checksums is None:
            return block
        yield from self._charge_checksum()
        if self.checksums.verify(key, block.data):
            return block
        self.integrity.incr("detected")
        if span is not None:
            span.mark(self.host.name, "integrity.detect",
                      block=f"{key[0]}#{key[1]}")
        block = yield from self._repair_block(key, span=span)
        return block

    def _repair_block(self, key: BlockKey, span=None) -> Generator:
        """Bounded repair ladder for a block that failed verification:
        drop the bad copy and re-read from storage up to
        ``params.integrity.verify_retries`` times, verifying each fill.
        Exhaustion quarantines the block (evicted, nothing served) and
        raises ``IntegrityError`` with an ``EINTEGRITY`` message that the
        RPC layer surfaces as a typed error at the client."""
        t0 = self.host.sim.now
        retries = max(1, self.host.params.integrity.verify_retries)
        for _ in range(retries):
            self.cache.invalidate(key)
            block = yield from self._get_block(key, span=span)
            yield from self._charge_checksum()
            if self.checksums.verify(key, block.data):
                self.integrity.incr("repaired")
                self.repair_latency.record(self.host.sim.now - t0)
                if span is not None:
                    span.mark(self.host.name, "integrity.repair",
                              block=f"{key[0]}#{key[1]}")
                return block
        self.cache.invalidate(key)
        self.integrity.incr("quarantined")
        if span is not None:
            span.mark(self.host.name, "integrity.quarantine",
                      block=f"{key[0]}#{key[1]}")
        raise IntegrityError(
            f"EINTEGRITY {key[0]}#{key[1]}: "
            f"repair exhausted after {retries} re-read(s)")

    def integrity_gauges(self):
        """Telemetry probes: windowed detection/repair rates (events/s),
        read-path and scrubber combined."""
        sim = self.host.sim
        stats = self.integrity
        return {
            "detected_s": rate_probe(
                sim, lambda: float(stats.get("detected")
                                   + stats.get("scrub.detected")),
                scale=1e6),
            "repaired_s": rate_probe(
                sim, lambda: float(stats.get("repaired")
                                   + stats.get("scrub.repaired")),
                scale=1e6),
        }

    def _finish(self, request: RPCRequest, reply: RPCReply) -> RPCReply:
        """Attach piggybacked delegation recalls for this client."""
        recalls = self.delegations.take_recalls(request.client)
        if recalls:
            reply.meta["recall"] = recalls
        return reply

    def _rdma_completion(self) -> Generator:
        """Host-side handling of a local RDMA completion event."""
        yield from self.host.cpu.poll()

    def _rdma_put_resilient(self, dst: str, addr: int, nbytes: int,
                            data: Any, capability, span=None) -> Generator:
        """Server-initiated RDMA write with bounded retransmission.

        The target is the client's plain registered buffer, so the only
        recoverable failure mode is an injected loss surfacing as an
        initiator timeout; retrying re-sends the whole transfer. Without
        this, one lost ack would kill the serving process and deadlock
        the client (its retransmissions would hit the in-progress entry
        of the duplicate request cache forever).
        """
        attempt = 0
        while True:
            try:
                yield from self.host.nic.rdma_put(
                    dst, addr, nbytes, data=data, capability=capability,
                    span=span)
                return
            except RemoteAccessFault:
                attempt += 1
                if attempt > self.rdma_put_retries:
                    raise
                self.stats.incr("rdma_put_retries")
                if span is not None:
                    span.mark(self.host.name, "server.rdma-retry",
                              attempt=attempt)

    # -- handlers -------------------------------------------------------------

    def _h_open(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        inode = self.fs.lookup(name)
        mode = request.args.get("mode", READ)
        delegated = self.delegations.grant(name, request.client, mode)
        self.stats.incr("opens")
        return self._finish(request, RPCReply(meta={
            "size": inode.size, "mtime": inode.mtime,
            "delegation": delegated,
        }))

    def _h_close(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        self.delegations.release(request.args["name"], request.client)
        self.stats.incr("closes")
        return self._finish(request, RPCReply())

    def _h_getattr(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        inode = self.fs.lookup(name)
        self.stats.incr("getattrs")
        return self._finish(request, RPCReply(meta={
            "size": inode.size, "mtime": inode.mtime}))

    def _h_lookup(self, srv: RPCServer, request: RPCRequest) -> Generator:
        # Directory name lookups need real server processing and are not
        # ORDMA-able (Section 4.2.2) — always a full-cost RPC.
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        self.stats.incr("lookups")
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        return self._finish(request, RPCReply(meta={"found": True}))

    def _h_create(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        self.fs.create(request.args["name"], request.args.get("size", 0))
        self.stats.incr("creates")
        return self._finish(request, RPCReply())

    def _h_remove(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        for index in range(self.fs.block_count(name)):
            self.cache.invalidate((name, index))
        if self.checksums is not None:
            self.checksums.forget(name)
        self.fs.remove(name)
        self.stats.incr("removes")
        return self._finish(request, RPCReply())

    def _h_read(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Read: reply inline, inline from registered memory, or by
        server-initiated RDMA write ('direct'), per ``args['mode']``."""
        args = request.args
        name, offset, nbytes = args["name"], args["offset"], args["nbytes"]
        mode = args.get("mode", "inline")
        cpu = self.host.cpu
        proto = self.host.params.proto
        span = request.span
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if span is not None:
            span.mark(self.host.name, "server.fs")
        indices = self.fs.blocks_in_range(name, offset, nbytes)
        blocks: List[ServerBlock] = []
        try:
            for index in indices:
                block = yield from self._get_block_verified((name, index),
                                                            span=span)
                blocks.append(block)
        except IntegrityError as exc:
            self.stats.incr("reads_failed_integrity")
            return self._finish(request,
                                RPCReply(meta={"rpc_error": str(exc)}))
        if len(blocks) > 1:
            # Gathering additional cache blocks into one transfer.
            yield from cpu.execute(0.5 * (len(blocks) - 1), category="fs")
        if span is not None:
            span.mark(self.host.name, "server.cache", blocks=len(blocks))
        payload: Any = (blocks[0].data if len(blocks) == 1
                        else tuple(b.data for b in blocks))
        meta: Dict[str, Any] = {"size": nbytes}
        if self.piggyback_refs:
            refs = []
            for index, block in zip(indices, blocks):
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
            if refs:
                meta["refs"] = refs
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if mode == "direct":
            yield from cpu.execute(proto.rdma_issue_us, category="rdma")
            yield from self._rdma_put_resilient(
                request.client, args["client_addr"], nbytes, payload,
                args.get("client_cap"), span=span)
            yield from self._rdma_completion()
            if span is not None:
                span.mark(self.host.name, "server.rdma", bytes=nbytes)
            self.stats.incr("reads_direct")
            return self._finish(request, RPCReply(meta=meta))
        if mode == "inline":
            # Serving inline from the file cache copies the payload into
            # the communication buffer (the Table 3 'in cache' case) —
        # unless the client asked for scatter/gather DMA straight from
            # the cache pages (the pre-posting reply path).
            if not args.get("sg"):
                yield from cpu.copy(nbytes, cached=False)
                if span is not None:
                    span.mark(self.host.name, "server.copy", bytes=nbytes)
            self.stats.incr("reads_inline")
            return self._finish(request,
                                RPCReply(inline_bytes=nbytes, data=payload,
                                         meta=meta))
        if mode == "inline-mem":
            # Payload already resides in registered communication memory
            # (the Table 3 'in mem.' case): no server-side copy.
            self.stats.incr("reads_inline_mem")
            return self._finish(request,
                                RPCReply(inline_bytes=nbytes, data=payload,
                                         meta=meta))
        return self._finish(request,
                            RPCReply(meta={"rpc_error": f"bad mode {mode}"}))

    def _h_lock(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Advisory whole-file lock (Section 4.2.2: explicit locks restore
        UNIX I/O semantics under mixed ORDMA/RPC access). Blocks until
        granted; FIFO-fair."""
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        mode = request.args.get("lock_mode", EXCLUSIVE)
        grant = self.locks.acquire(name, request.client, mode)
        yield grant
        self.stats.incr("locks")
        return self._finish(request, RPCReply(meta={"locked": name,
                                                    "lock_mode": mode}))

    def _h_unlock(self, srv: RPCServer, request: RPCRequest) -> Generator:
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us / 2, category="fs")
        name = request.args["name"]
        try:
            self.locks.release(name, request.client)
        except KeyError:
            return self._finish(request, RPCReply(
                meta={"rpc_error": f"not locked by {request.client}"}))
        self.stats.incr("unlocks")
        return self._finish(request, RPCReply(meta={"unlocked": name}))

    def _h_get_refs(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Eager directory building (Section 4.2 principle (a)): return
        remote references for a file's currently cached blocks in one RPC,
        instead of waiting for per-read piggybacks."""
        proto = self.host.params.proto
        yield from self.host.cpu.execute(proto.fs_op_us, category="fs")
        name = request.args["name"]
        if not self.fs.exists(name):
            return self._finish(request,
                                RPCReply(meta={"rpc_error": f"ENOENT {name}"}))
        refs = []
        if self.piggyback_refs:
            for index in range(self.fs.block_count(name)):
                block = self.cache.lookup((name, index))
                if block is None:
                    continue
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
            # Assembling the reference list costs the server per entry.
            yield from self.host.cpu.execute(0.05 * len(refs),
                                             category="fs")
        self.stats.incr("get_refs")
        # Each reference is ~32 bytes on the wire.
        return self._finish(request, RPCReply(
            inline_bytes=32 * len(refs),
            meta={"refs": refs, "refs_name": name}))

    def _h_read_batch(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Batch I/O (Section 2.2): one RPC triggers a set of server-issued
        RDMA writes, amortizing the client's per-I/O RPC cost."""
        args = request.args
        name = args["name"]
        cpu = self.host.cpu
        proto = self.host.params.proto
        span = request.span
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if span is not None:
            span.mark(self.host.name, "server.fs")
        total = 0
        for extent in args["extents"]:
            offset, nbytes = extent["offset"], extent["nbytes"]
            yield from cpu.execute(2.0, category="fs")  # per-extent setup
            blocks = []
            try:
                for index in self.fs.blocks_in_range(name, offset, nbytes):
                    block = yield from self._get_block_verified(
                        (name, index), span=span)
                    blocks.append(block)
            except IntegrityError as exc:
                self.stats.incr("reads_failed_integrity")
                return self._finish(request,
                                    RPCReply(meta={"rpc_error": str(exc)}))
            payload = (blocks[0].data if len(blocks) == 1
                       else tuple(b.data for b in blocks))
            yield from cpu.execute(proto.rdma_issue_us, category="rdma")
            yield from self._rdma_put_resilient(
                request.client, extent["client_addr"], nbytes, payload,
                extent.get("client_cap"), span=span)
            yield from self._rdma_completion()
            if span is not None:
                span.mark(self.host.name, "server.rdma", bytes=nbytes)
            total += nbytes
        self.stats.incr("batch_reads")
        self.stats.incr("read_bytes", total)
        return self._finish(request, RPCReply(meta={"size": total}))

    def _h_write(self, srv: RPCServer, request: RPCRequest) -> Generator:
        """Write: payload arrives inline with the request; the server
        copies it into the file cache, updates metadata, and replies.
        (Writes always involve the server CPU — Section 4.2.2.)"""
        args = request.args
        name, offset, nbytes = args["name"], args["offset"], args["nbytes"]
        cpu = self.host.cpu
        proto = self.host.params.proto
        yield from cpu.execute(proto.fs_op_us, category="fs")
        if nbytes > 0:
            yield from cpu.copy(nbytes, cached=False)
        meta: Dict[str, Any] = {}
        refs: List[Tuple[int, Any]] = []
        # An ORDMA write already moved the bytes into the exported block;
        # this RPC settles the metadata (mtime, block status) for those
        # blocks (Section 4.2.2: writes always need the server CPU).
        indices = (args["ordma_blocks"] if "ordma_blocks" in args
                   else self.fs.blocks_in_range(name, offset, nbytes))
        for index in indices:
            data = self.fs.write_block(name, index, now=self.host.sim.now)
            if self.checksums is not None:
                # The reliable-metadata model: the checksum is recorded
                # from the just-written truth, before anything on the
                # data path can go wrong with the copy.
                self.checksums.record((name, index))
                yield from self._charge_checksum()
            if self.disk.faults is not None:
                # A misdirected write lands on the wrong sector: the
                # stored copy is silently wrong, the RPC still succeeds.
                data = self.disk.faults.misdirect_payload(data)
            block = self.cache.insert((name, index), data)
            if self.piggyback_refs:
                ref = self.cache.ref_for(block)
                if ref is not None:
                    refs.append((index, ref))
        if refs:
            meta["refs"] = refs
        inode = self.fs.lookup(name)
        meta.update({"size": inode.size, "mtime": inode.mtime})
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        return self._finish(request, RPCReply(meta=meta))


class NFSServer(BaseFileServer):
    """NFS-family server over UDP (standard, pre-posting and hybrid
    clients all talk to this one; the request's mode/sg flags select the
    reply path)."""

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, port: int = NFS_PORT):
        stack = UDPStack(host)
        super().__init__(host, fs, disk, cache, stack.socket(port),
                         name=f"{host.name}.nfsd")


class DAFSServer(BaseFileServer):
    """DAFS kernel server over a VI endpoint (Section 5: [21])."""

    def __init__(self, host: Host, fs: FileSystem, disk: Disk,
                 cache: ServerFileCache, port: int = DAFS_PORT,
                 mode: NotifyMode = NotifyMode.BLOCK,
                 slots: int = GMEndpoint.DEFAULT_SLOTS):
        self.endpoint = VIEndpoint(host, port, mode=mode, slots=slots)
        self.notify_mode = mode
        super().__init__(host, fs, disk, cache, self.endpoint,
                         name=f"{host.name}.dafsd")

    def _rdma_completion(self) -> Generator:
        if self.notify_mode is NotifyMode.BLOCK:
            yield from self.host.cpu.interrupt(
                coalesce_window_us=self.host.params.nic.interrupt_coalesce_us)
            yield from self.host.cpu.wakeup()
        else:
            yield from self.host.cpu.poll()


class ODAFSServer(DAFSServer):
    """Optimistic DAFS server: exported cache + piggybacked references."""

    piggyback_refs = True
