"""Server VM pressure: a page-reclaim daemon over the file cache.

Section 4.2.1 arranges the ODAFS export map so that "NIC TLB invalidations
are due to the OS reclaiming a VM page due to memory pressure" — this
module provides that reclaim activity. A daemon periodically evicts the
coldest file-cache blocks: exported blocks get their NIC TLB entries shot
down and their TPT registrations dropped, so clients holding stale
references fault on their next ORDMA and recover over RPC — the full
optimistic consistency loop, exercised dynamically.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from ...sim import Counter, Event, Simulator
from .filecache import BlockKey, ServerFileCache


class MemoryPressure:
    """Periodic reclaim of cold file-cache blocks."""

    def __init__(self, sim: Simulator, cache: ServerFileCache,
                 interval_us: float, blocks_per_round: int = 1,
                 rng: Optional[random.Random] = None):
        if interval_us <= 0:
            raise ValueError(f"interval must be positive: {interval_us}")
        if blocks_per_round < 1:
            raise ValueError(
                f"blocks_per_round must be >= 1: {blocks_per_round}")
        self.sim = sim
        self.cache = cache
        self.interval_us = interval_us
        self.blocks_per_round = blocks_per_round
        self.rng = rng
        self.stats = Counter()
        self._running = False
        self._stop_on: Optional[Event] = None

    def start(self, stop_on: Optional[Event] = None) -> None:
        """Run the daemon; it exits on :meth:`stop` or, if ``stop_on`` is
        given (e.g. the workload's process), when that event triggers —
        so the simulation's event heap can drain."""
        if self._running:
            raise RuntimeError("pressure daemon already running")
        self._running = True
        self._stop_on = stop_on
        self.sim.process(self._daemon(), name="vm-pressure")

    def stop(self) -> None:
        self._running = False

    def _victims(self) -> List[BlockKey]:
        """Coldest resident blocks (LRU order), optionally jittered."""
        order = list(self.cache._policy)  # LRU -> MRU
        if self.rng is not None and len(order) > self.blocks_per_round:
            # Sample from the cold half to avoid always hitting the exact
            # LRU block (real reclaim scans are approximate).
            cold = order[:max(self.blocks_per_round, len(order) // 2)]
            self.rng.shuffle(cold)
            return cold[:self.blocks_per_round]
        return order[:self.blocks_per_round]

    def _daemon(self) -> Generator:
        while self._running:
            yield self.sim.timeout(self.interval_us)
            if not self._running:
                return
            if self._stop_on is not None and self._stop_on.triggered:
                return
            for key in self._victims():
                if self.cache.invalidate(key):
                    self.stats.incr("reclaimed")
