"""File servers and the server file cache."""

from .filecache import ServerBlock, ServerFileCache
from .sched import RequestScheduler
from .server import (
    DAFS_PORT,
    NFS_PORT,
    BaseFileServer,
    DAFSServer,
    NFSServer,
    ODAFSServer,
)

__all__ = [
    "BaseFileServer",
    "DAFSServer",
    "DAFS_PORT",
    "NFSServer",
    "NFS_PORT",
    "ODAFSServer",
    "RequestScheduler",
    "ServerBlock",
    "ServerFileCache",
]
