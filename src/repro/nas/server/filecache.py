"""Server kernel file cache with optional memory export for ORDMA.

The ODAFS server maps cached file blocks into a private 64-bit virtual
address map that only the NIC addresses (Section 4.2.1), registers them in
the TPT *unpinned* (so the VM system may still reclaim the pages — that is
what makes client access optimistic), and hands out capabilities as remote
references. Evicting a block revokes its TPT entry; a client that still
holds the stale reference gets a recoverable fault on its next ORDMA.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...cache.lru import LRUPolicy
from ...fs.files import BlockContent
from ...hw.host import Host
from ...hw.memory import Buffer, AddressSpace
from ...hw.tpt import Segment
from ...proto.ordma import RemoteRef
from ...sim import Counter, ratio_probe

BlockKey = Tuple[str, int]


class ServerBlock:
    """One cached file block, optionally exported."""

    __slots__ = ("key", "buffer", "segment", "data")

    def __init__(self, key: BlockKey, buffer: Buffer, data: BlockContent,
                 segment: Optional[Segment]):
        self.key = key
        self.buffer = buffer
        self.data = data
        self.segment = segment


class ServerFileCache:
    """LRU cache of file blocks in server memory."""

    def __init__(self, host: Host, block_size: int, capacity_blocks: int,
                 export: bool = False, preload_tlb: bool = True):
        """``preload_tlb`` loads exported blocks' translations into the NIC
        TLB at insert time, reproducing the paper's setup where RDMA
        "always hits in the NIC TLB" (Section 5.2). The NIC-TLB ablation
        turns this off to expose miss costs."""
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1: {capacity_blocks}")
        self.host = host
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.export = export
        self.preload_tlb = preload_tlb
        self.stats = Counter()
        #: Optional :class:`repro.integrity.ChecksumStore`, installed by
        #: the owning server when ``params.integrity.enabled``; when set,
        #: exported references carry the block's expected checksum.
        self.checksums = None
        self._policy = LRUPolicy(capacity_blocks)
        self._blocks: Dict[BlockKey, ServerBlock] = {}
        #: Private 64-bit export map, addressed only by the NIC
        #: (Section 4.2.1); plain file caching uses host memory directly.
        self._space = (AddressSpace(name=f"{host.name}.export",
                                    base=0x8000_0000_0000)
                       if export else host.mem)

    def __len__(self) -> int:
        return len(self._blocks)

    def peek(self, key: BlockKey) -> Optional[ServerBlock]:
        """Inspect a resident block without touching LRU order or the
        hit/miss counters — the scrubber audits the cache through this."""
        return self._blocks.get(key)

    def keys(self):
        """Resident block keys in insertion order (scrubber walk order)."""
        return list(self._blocks)

    def lookup(self, key: BlockKey) -> Optional[ServerBlock]:
        block = self._blocks.get(key)
        if block is None:
            self.stats.incr("misses")
            return None
        self._policy.touch(key)
        self.stats.incr("hits")
        return block

    def insert(self, key: BlockKey, data: BlockContent) -> ServerBlock:
        existing = self._blocks.get(key)
        if existing is not None:
            existing.data = data
            existing.buffer.data = data
            self._policy.touch(key)
            return existing
        victim_key = self._policy.admit(key)
        if victim_key is not None:
            self._drop(victim_key)
        buffer = self._space.alloc(self.block_size,
                                   name=f"{key[0]}#{key[1]}")
        buffer.data = data
        segment = None
        if self.export:
            segment = self.host.nic.tpt.register(buffer, pin=False)
            self.stats.incr("exports")
            if self.preload_tlb:
                for page in buffer.pages:
                    self.host.nic.tlb.load(page)
        block = ServerBlock(key, buffer, data, segment)
        self._blocks[key] = block
        return block

    def _drop(self, key: BlockKey) -> None:
        block = self._blocks.pop(key)
        if block.segment is not None:
            # Any NIC-TLB-resident translations must be shot down before
            # the pages can go away (Section 4.1): the OS checks the TPT
            # and evicts the entries from the NIC TLB.
            for page in block.buffer.pages:
                if page.nic_loaded:
                    self.host.nic.tlb.invalidate(page)
                    self.stats.incr("tlb_shootdowns")
            self.host.nic.tpt.deregister(block.segment)
        block.buffer.space.free(block.buffer)
        self.stats.incr("evictions")

    def clear(self) -> int:
        """Drop every cached block at once — a crashed server restarts
        cold, and each export revocation leaves clients holding stale
        references that fault on next use. Returns blocks lost."""
        keys = list(self._blocks)
        for key in keys:
            self._policy.remove(key)
            self._drop(key)
        if keys:
            self.stats.incr("clears")
        return len(keys)

    def invalidate(self, key: BlockKey) -> bool:
        """Explicitly drop one block (e.g. VM pressure, write-back)."""
        if key not in self._blocks:
            return False
        self._policy.remove(key)
        self._drop(key)
        return True

    def revoke_export(self, key: BlockKey) -> bool:
        """Revoke a block's capability without evicting the data — the
        'server may revoke access privileges' path of Section 4."""
        block = self._blocks.get(key)
        if block is None or block.segment is None:
            return False
        self.host.nic.tpt.revoke(block.segment)
        self.stats.incr("revocations")
        return True

    def ref_for(self, block: ServerBlock) -> Optional[RemoteRef]:
        """The piggybackable remote reference for an exported block."""
        if block.segment is None or block.segment.revoked:
            return None
        csum = (self.checksums.expected(block.key)
                if self.checksums is not None else None)
        return RemoteRef(self.host.name, block.segment.base,
                         block.segment.length,
                         capability=block.segment.capability,
                         csum=csum)

    def hit_ratio(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0

    def gauges(self):
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        resident block count and hit rate over the sampling window (not
        the cumulative :meth:`hit_ratio`)."""
        stats = self.stats
        return {
            "blocks": lambda: float(len(self._blocks)),
            "hit_rate": ratio_probe(
                lambda: float(stats.get("hits")),
                lambda: float(stats.get("hits") + stats.get("misses"))),
        }
