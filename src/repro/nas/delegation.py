"""Open delegations.

DAFS open delegations let a client satisfy repeat opens and closes of a
file locally (Section 5.2: "After the first open of a file, which grants
the client an open delegation, each subsequent open or close for that file
is satisfied locally"). Read delegations are shared; a write delegation is
exclusive. On conflict the server recalls outstanding delegations by
piggybacking recall notices on its next response to each holder.
"""

from __future__ import annotations

from typing import Dict, List, Set

READ = "read"
WRITE = "write"


class DelegationTable:
    """Server-side delegation state."""

    def __init__(self):
        #: name -> {client: mode}
        self._grants: Dict[str, Dict[str, str]] = {}
        #: client -> names whose delegation must be recalled
        self._recalls: Dict[str, Set[str]] = {}

    def grant(self, name: str, client: str, mode: str = READ) -> bool:
        """Try to grant ``client`` a delegation; returns True on success.

        A conflicting request is denied *and* recalls existing holders
        (they learn via :meth:`take_recalls` piggybacking).
        """
        if mode not in (READ, WRITE):
            raise ValueError(f"bad delegation mode: {mode}")
        holders = self._grants.setdefault(name, {})
        conflicting = [c for c, m in holders.items()
                       if c != client and (mode == WRITE or m == WRITE)]
        if conflicting:
            for other in conflicting:
                self._recalls.setdefault(other, set()).add(name)
                holders.pop(other, None)
            return False
        holders[client] = mode
        return True

    def release(self, name: str, client: str) -> None:
        holders = self._grants.get(name)
        if holders:
            holders.pop(client, None)
            if not holders:
                del self._grants[name]

    def holders(self, name: str) -> List[str]:
        return list(self._grants.get(name, {}))

    def holds(self, name: str, client: str) -> bool:
        return client in self._grants.get(name, {})

    def take_recalls(self, client: str) -> List[str]:
        """Names whose delegations ``client`` must drop (cleared on read)."""
        names = self._recalls.pop(client, None)
        return sorted(names) if names else []
