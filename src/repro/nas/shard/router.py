"""Client-side shard router: one per-system subclient per server.

The router sits between a workload and the existing per-system NAS
clients. It partitions every read/write into contiguous same-shard
segments (via the placement policy), fans the segments out concurrently
over the per-server subclients, and reassembles the payload in block
order — so a striped read returns byte-identical contents to a
single-server read of the same range. Namespace operations (open, close,
locks) route to the file's *home* shard; create/remove broadcast, since
every server exports the full namespace.

Crash failover: an :class:`~repro.proto.rpc.RPCTimeoutError` from a
subclient (the retry budget against a crashed server is exhausted) marks
that shard down for ``params.shard.down_cooldown_us`` and re-issues the
operation against the next server in the block's replica chain — an RPC
read, since the replica holds a warm copy of the block but the client's
ORDMA directory entries for it point at the dead server's memory. With
no replicas configured the router surfaces a typed
:class:`ShardDownError` instead of hanging. After the cooldown the
router optimistically retries the primary (a restarted server serves
again, cold). Every decision lands in ``shard.*`` counters and, when a
tracer is attached, as ``shard.failover`` / ``shard.reroute`` span
marks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ...hw.host import Host
from ...integrity.checksum import IntegrityError
from ...proto.rpc import RPCTimeoutError
from ...sim import Counter, Span
from ..client.base import NASClient
from ..delegation import READ
from .placement import Placement


class ShardDownError(RuntimeError):
    """A shard (and every replica in its chain) is unreachable."""

    def __init__(self, shard: int, op: str, name: str):
        super().__init__(f"shard {shard} down ({op} {name!r}): no live "
                         f"replica in the chain")
        self.shard = shard
        self.op = op
        self.name = name


#: A per-target operation attempt (generator factory for one subclient).
_Attempt = Callable[[int], Generator]


class ShardRouter:
    """Routes one client's file operations across N per-server subclients."""

    def __init__(self, host: Host, subclients: List[NASClient],
                 placement: Placement, block_size: int,
                 down_cooldown_us: float = 10_000.0):
        if len(subclients) != placement.n_servers:
            raise ValueError(f"{len(subclients)} subclient(s) for "
                             f"{placement.n_servers} server(s)")
        self.host = host
        self.subclients = subclients
        self.placement = placement
        self.block_size = block_size
        self.down_cooldown_us = down_cooldown_us
        self.stats = Counter()
        #: shard index -> sim time until which it is considered down.
        self._down_until: Dict[int, float] = {}

    # -- small helpers -----------------------------------------------------

    @property
    def sim(self):
        return self.host.sim

    def _start_span(self, op: str, **detail) -> Optional[Span]:
        tracer = self.sim.tracer
        if tracer is None:
            return None
        return tracer.start_span(self.host.name, op, **detail)

    def is_down(self, shard: int) -> bool:
        """Whether ``shard`` is inside its down-cooldown window."""
        until = self._down_until.get(shard)
        return until is not None and self.sim.now < until

    def down_shards(self) -> int:
        return sum(1 for s in self._down_until if self.is_down(s))

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes: shards currently marked down."""
        return {"down": lambda: float(self.down_shards())}

    def _mark_down(self, shard: int, span: Optional[Span]) -> None:
        self._down_until[shard] = self.sim.now + self.down_cooldown_us
        self.stats.incr("down_marks")
        if span is not None:
            span.mark(self.host.name, "shard.failover", shard=shard)

    def _blocks_of(self, offset: int, nbytes: int) -> List[int]:
        bs = self.block_size
        first = offset // bs
        last = (offset + max(nbytes, 1) - 1) // bs
        return list(range(first, last + 1))

    def _segments(self, name: str, offset: int,
                  nbytes: int) -> List[Tuple[int, int, int, int]]:
        """Split a byte range into (shard, seg_offset, seg_nbytes,
        n_blocks) runs of consecutive blocks with the same primary."""
        bs = self.block_size
        segments: List[Tuple[int, int, int, int]] = []
        run_start: Optional[int] = None
        run_shard = -1
        prev = -1

        def close_run(last_block: int) -> None:
            seg_off = max(offset, run_start * bs)
            seg_end = min(offset + nbytes, (last_block + 1) * bs)
            segments.append((run_shard, seg_off, seg_end - seg_off,
                             last_block - run_start + 1))

        for block in self._blocks_of(offset, nbytes):
            shard = self.placement.shard_of(name, block)
            if run_start is None:
                run_start, run_shard = block, shard
            elif shard != run_shard:
                close_run(prev)
                run_start, run_shard = block, shard
            prev = block
        if run_start is not None:
            close_run(prev)
        return segments

    # -- failover-aware dispatch -------------------------------------------

    def _call_chain(self, chain: Tuple[int, ...], attempt: _Attempt,
                    op: str, name: str, span: Optional[Span] = None,
                    repair: Optional[Callable[[Any, List[int]],
                                              Generator]] = None) -> Generator:
        """Run ``attempt`` against the first live server in ``chain``.

        A timeout marks the target down and moves to the next chain
        entry. An :class:`IntegrityError` also moves on — the server is
        perfectly alive, its copy of the data is rotten — but does *not*
        mark the shard down; instead the target is remembered and, once a
        later replica returns good data, ``repair(result, bad_targets)``
        is run to write that data back (read-repair). Exhausting the
        chain raises ``IntegrityError`` if every live member failed
        verification, :class:`ShardDownError` otherwise.
        """
        attempted = False
        bad: List[int] = []
        for pos, target in enumerate(chain):
            if self.is_down(target):
                continue
            if pos > 0:
                # Serving from a replica: the primary is (known or just
                # found to be) down.
                self.stats.incr("replica_reads" if op == "read"
                                else "replica_ops")
                if span is not None:
                    span.mark(self.host.name, "shard.reroute",
                              shard=chain[0], replica=target)
            try:
                result = yield from attempt(target)
            except RPCTimeoutError:
                attempted = True
                self._mark_down(target, span)
                self.stats.incr("timeouts")
                continue
            except IntegrityError:
                attempted = True
                bad.append(target)
                self.stats.incr("integrity_errors")
                if span is not None:
                    span.mark(self.host.name, "integrity.reroute",
                              shard=target)
                continue
            if attempted:
                # This very call hit the timeout and recovered downstream.
                self.stats.incr("failovers")
            if bad and repair is not None:
                yield from repair(result, bad)
            return result
        if bad:
            raise IntegrityError(
                f"EINTEGRITY shard {chain[0]} ({op} {name!r}): every live "
                f"replica failed verification")
        raise ShardDownError(chain[0], op, name)

    def _chain(self, name: str, block: int = 0) -> Tuple[int, ...]:
        return self.placement.replica_chain(name, block)

    # -- namespace operations ----------------------------------------------

    def open(self, name: str, mode: str = READ) -> Generator:
        """Open at the home shard (failing over along its chain)."""
        result = yield from self._call_chain(
            self._chain(name), lambda t: self.subclients[t].open(name, mode),
            "open", name)
        self.stats.incr("opens")
        return result

    def close(self, name: str) -> Generator:
        """Close wherever the file was actually opened.

        After a failover-open the handle lives on a replica's subclient,
        not the home's; a close that times out is swallowed — the
        crashed server's open state died with it.
        """
        for sub in self.subclients:
            if name not in sub._handles:
                continue
            try:
                yield from sub.close(name)
            except RPCTimeoutError:
                shard = self.subclients.index(sub)
                self._mark_down(shard, None)
                self.stats.incr("timeouts")
        self.stats.incr("closes")

    def getattr(self, name: str) -> Generator:
        result = yield from self._call_chain(
            self._chain(name), lambda t: self.subclients[t].getattr(name),
            "getattr", name)
        return result

    def lock(self, name: str, mode: str = "exclusive") -> Generator:
        """Advisory lock at the home shard (per-shard after failover)."""
        result = yield from self._call_chain(
            self._chain(name), lambda t: self.subclients[t].lock(name, mode),
            "lock", name)
        return result

    def unlock(self, name: str) -> Generator:
        result = yield from self._call_chain(
            self._chain(name),
            lambda t: self.subclients[t].unlock(name), "unlock", name)
        return result

    def _broadcast(self, op: str, name: str,
                   attempt: _Attempt) -> Generator:
        """Run ``attempt`` on every live shard (namespace broadcast)."""
        procs = []
        reached = 0
        for shard in range(self.placement.n_servers):
            if self.is_down(shard):
                continue
            reached += 1
            procs.append(self.sim.process(
                self._swallow_timeout(shard, attempt),
                name=f"{self.host.name}.shard-{op}"))
        if reached == 0:
            raise ShardDownError(0, op, name)
        if procs:
            yield self.sim.all_of(procs)

    def _swallow_timeout(self, shard: int, attempt: _Attempt) -> Generator:
        try:
            yield from attempt(shard)
        except RPCTimeoutError:
            self._mark_down(shard, None)
            self.stats.incr("timeouts")

    def create(self, name: str, size: int) -> Generator:
        """Create on every server: each exports the full namespace."""
        yield from self._broadcast(
            "create", name, lambda t: self.subclients[t].create(name, size))
        self.stats.incr("creates")

    def remove(self, name: str) -> Generator:
        yield from self._broadcast(
            "remove", name, lambda t: self.subclients[t].remove(name))
        self.stats.incr("removes")

    # -- data operations ----------------------------------------------------

    def _as_blocks(self, data: Any, n_blocks: int) -> List[Any]:
        """Normalize a subclient payload to a per-block list."""
        return list(data) if n_blocks > 1 else [data]

    def _read_segment(self, name: str, shard: int, offset: int,
                      nbytes: int, n_blocks: int, sink: List[Any],
                      slot: int, span: Optional[Span]) -> Generator:
        first_block = offset // self.block_size
        chain = self.placement.replica_chain(name, first_block)

        def read_repair(result: Any, bad: List[int]) -> Generator:
            # Write the verified replica copy back over each rotten one:
            # the write path re-records the checksum from fresh truth, so
            # the quarantined server serves good data again without
            # waiting for its scrubber.
            for target in bad:
                yield from self.subclients[target].write(name, offset,
                                                         nbytes)
                self.stats.incr("read_repairs")
                if span is not None:
                    span.mark(self.host.name, "integrity.repair",
                              shard=target)

        data = yield from self._call_chain(
            chain, lambda t: self.subclients[t].read(name, offset, nbytes),
            "read", name, span=span, repair=read_repair)
        sink[slot] = self._as_blocks(data, n_blocks)

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer=None) -> Generator:
        """Read a byte range, fanning same-shard segments out in parallel
        and reassembling the payload in block order."""
        span = self._start_span("shard.read", name=name, offset=offset,
                                nbytes=nbytes)
        segments = self._segments(name, offset, nbytes)
        if span is not None:
            span.mark(self.host.name, "shard.route",
                      segments=len(segments),
                      shards=sorted({s for s, _, _, _ in segments}))
        results: List[Any] = [None] * len(segments)
        if len(segments) == 1:
            shard, seg_off, seg_n, blocks = segments[0]
            yield from self._read_segment(name, shard, seg_off, seg_n,
                                          blocks, results, 0, span)
        else:
            procs = [self.sim.process(
                self._read_segment(name, shard, seg_off, seg_n, blocks,
                                   results, slot, span),
                name=f"{self.host.name}.shard-read")
                for slot, (shard, seg_off, seg_n, blocks)
                in enumerate(segments)]
            yield self.sim.all_of(procs)
            self.stats.incr("fanout_reads")
        resolved = [item for seg in results for item in seg]
        if app_buffer is not None:
            app_buffer.data = resolved[0] if len(resolved) == 1 \
                else tuple(resolved)
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        self.stats.incr("routed_segments", len(segments))
        if span is not None:
            span.finish(self.host.name)
        return resolved[0] if len(resolved) == 1 else tuple(resolved)

    def read_async(self, name: str, offset: int, nbytes: int,
                   app_buffer=None):
        """Issue a read as a concurrent process (aio-style read-ahead)."""
        return self.sim.process(
            self.read(name, offset, nbytes, app_buffer),
            name=f"{self.host.name}.shard-aio")

    def _write_segment(self, name: str, offset: int, nbytes: int,
                       sink: List[Any], slot: int,
                       span: Optional[Span]) -> Generator:
        """Write one segment to every live member of its replica chain
        (replicas hold warm copies, so failover reads stay current)."""
        first_block = offset // self.block_size
        chain = self.placement.replica_chain(name, first_block)
        wrote = 0
        meta: Any = None
        for target in chain:
            if self.is_down(target):
                continue
            try:
                meta = yield from self.subclients[target].write(
                    name, offset, nbytes)
            except RPCTimeoutError:
                self._mark_down(target, span)
                self.stats.incr("timeouts")
                continue
            wrote += 1
        if wrote == 0:
            raise ShardDownError(chain[0], "write", name)
        sink[slot] = meta

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        """Write a byte range through the primaries (and replicas)."""
        span = self._start_span("shard.write", name=name, offset=offset,
                                nbytes=nbytes)
        segments = self._segments(name, offset, nbytes)
        results: List[Any] = [None] * len(segments)
        if len(segments) == 1:
            _, seg_off, seg_n, _ = segments[0]
            yield from self._write_segment(name, seg_off, seg_n,
                                           results, 0, span)
        else:
            procs = [self.sim.process(
                self._write_segment(name, seg_off, seg_n, results, slot,
                                    span),
                name=f"{self.host.name}.shard-write")
                for slot, (_, seg_off, seg_n, _) in enumerate(segments)]
            yield self.sim.all_of(procs)
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return results[0]
