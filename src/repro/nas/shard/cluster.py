"""Sharded testbed wiring: N full servers behind the existing switch.

A :class:`ShardedCluster` mirrors the single-server
:class:`repro.cluster.Cluster` surface (``sim``, ``clients``,
``create_file``, measurement helpers, ``metrics``/``attach_sampler``) so
every existing workload runs unchanged — but wires
``params.shard.n_servers`` servers, each with its own host, disk, file
cache, and (optional) admission scheduler, and fronts each client host
with a :class:`~repro.nas.shard.router.ShardRouter` holding one
per-system subclient per server.

Port scheme: shard ``k`` serves on ``base_port + k`` (NFS 2049+k, DAFS
10+k). GM/UDP deliver to the same port number at the destination host,
so subclient ``k`` binds the matching port on the client side; the NFS
subclients share the client host's single UDP stack (one Ethernet
handler per NIC).

Every server's file system holds the *full* file — block content is the
``(name, index, version)`` tuple, so any server can serve any block
correctly from disk — but only the blocks a server primaries (or
replicates) are warmed into its cache. Striping is therefore purely a
routing and cache-warming concern, which is what makes striped reads
byte-identical to the single-server baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...fs.disk import Disk
from ...fs.files import FileSystem
from ...hw.host import Host
from ...hw.nic import NotifyMode
from ...net.link import Switch
from ...net.packet import reset_msg_ids
from ...params import Params, default_params
from ...proto.rpc import RetryPolicy
from ...proto.udp import UDPStack
from ...sim import (MetricsRegistry, RandomStreams, Simulator,
                    TimeSeriesSampler)
from ..client.dafs import DAFSClient
from ..client.nfs import NFSClient
from ..client.odafs import ODAFSClient
from ..server.filecache import ServerFileCache
from ..server.sched import RequestScheduler
from ..server.server import (DAFS_PORT, NFS_PORT, DAFSServer, NFSServer,
                             ODAFSServer)
from .placement import make_placement
from .router import ShardRouter

#: Systems the shard layer supports (the paper's baseline, the kernel
#: DAFS variant, and the optimistic client the scale-out story is about).
SHARD_SYSTEMS = ("nfs", "dafs", "odafs")


class ShardedCluster:
    """N servers, ``n_clients`` routed client hosts, one switch."""

    def __init__(self, params: Optional[Params] = None,
                 system: str = "odafs", n_clients: int = 1,
                 block_size: Optional[int] = None,
                 server_cache_blocks: int = 4096,
                 server_notify_mode: NotifyMode = NotifyMode.BLOCK,
                 use_capabilities: bool = True,
                 server_preload_tlb: bool = True,
                 client_kwargs: Optional[Dict] = None):
        if system not in SHARD_SYSTEMS:
            raise ValueError(f"unknown sharded system {system!r}; "
                             f"one of {SHARD_SYSTEMS}")
        self.params = params or default_params()
        self.system = system
        shard_p = self.params.shard
        self.n_servers = shard_p.n_servers
        self.placement = make_placement(shard_p, self.params.seed)
        self.sim = Simulator()
        self.rand = RandomStreams(self.params.seed)
        self.switch = Switch(self.sim, self.params.net,
                             rng=self.rand.stream("net.loss"))
        self.block_size = block_size or self.params.storage.server_cache_block

        # -- servers: one full stack per shard ---------------------------
        self.server_hosts: List[Host] = []
        self.filesystems: List[FileSystem] = []
        self.disks: List[Disk] = []
        self.caches: List[ServerFileCache] = []
        self.servers = []
        self.schedulers: List[Optional[RequestScheduler]] = []
        sched_p = self.params.sched
        for k in range(self.n_servers):
            host = Host(self.sim, self.params, self.switch, f"server{k}",
                        use_capabilities=use_capabilities)
            fs = FileSystem(self.block_size)
            disk = Disk(self.sim, self.params.storage,
                        name=f"server{k}.disk")
            cache = ServerFileCache(host, self.block_size,
                                    server_cache_blocks,
                                    export=(system == "odafs"),
                                    preload_tlb=server_preload_tlb)
            if system == "odafs":
                server = ODAFSServer(host, fs, disk, cache,
                                     port=DAFS_PORT + k,
                                     mode=server_notify_mode)
            elif system == "dafs":
                server = DAFSServer(host, fs, disk, cache,
                                    port=DAFS_PORT + k,
                                    mode=server_notify_mode)
            else:
                server = NFSServer(host, fs, disk, cache,
                                   port=NFS_PORT + k)
            scheduler: Optional[RequestScheduler] = None
            if sched_p.policy != "none":
                scheduler = RequestScheduler(
                    self.sim, policy=sched_p.policy,
                    service_threads=sched_p.service_threads,
                    max_queue=sched_p.max_queue)
                server.rpc.attach_scheduler(scheduler)
            server.start()
            self.server_hosts.append(host)
            self.filesystems.append(fs)
            self.disks.append(disk)
            self.caches.append(cache)
            self.servers.append(server)
            self.schedulers.append(scheduler)

        # -- clients: one router over N subclients per host --------------
        kwargs = dict(client_kwargs or {})
        self.client_hosts: List[Host] = []
        self.clients: List[ShardRouter] = []
        for i in range(n_clients):
            host = Host(self.sim, self.params, self.switch, f"client{i}",
                        use_capabilities=use_capabilities)
            self.client_hosts.append(host)
            subclients = self._make_subclients(host, kwargs)
            if sched_p.policy != "none":
                for k, sub in enumerate(subclients):
                    sub.rpc.reject_retry = RetryPolicy(
                        backoff_base_us=sched_p.reject_backoff_base_us,
                        backoff_factor=sched_p.reject_backoff_factor,
                        backoff_cap_us=sched_p.reject_backoff_cap_us,
                        jitter=sched_p.reject_jitter,
                        max_retries=sched_p.reject_max_retries,
                        rng=self.rand.stream(f"{host.name}.reject.s{k}"))
            self.clients.append(ShardRouter(
                host, subclients, self.placement, self.block_size,
                down_cooldown_us=shard_p.down_cooldown_us))

        self.metrics = MetricsRegistry()
        self._register_metrics()
        self.sampler: Optional[TimeSeriesSampler] = None
        self.reset()

    def _make_subclients(self, host: Host, kwargs: Dict) -> List:
        subclients = []
        if self.system == "nfs":
            # One Ethernet handler per NIC: every NFS subclient shares
            # the host's single UDP stack, on its shard's port.
            stack = UDPStack(host)
            for k in range(self.n_servers):
                subclients.append(NFSClient(
                    host, f"server{k}",
                    transport=stack.socket(NFS_PORT + k), **kwargs))
            return subclients
        cls = DAFSClient if self.system == "dafs" else ODAFSClient
        for k in range(self.n_servers):
            sub_kwargs = dict(kwargs)
            sub_kwargs.setdefault("cache_block_size", self.block_size)
            subclients.append(cls(host, f"server{k}", port=DAFS_PORT + k,
                                  **sub_kwargs))
        return subclients

    def reset(self) -> None:
        """Zero the message-id space and every RPC endpoint's session
        state (the :meth:`repro.cluster.Cluster.reset` contract)."""
        reset_msg_ids()
        for server in self.servers:
            server.rpc.reset_session()
        for router in self.clients:
            for sub in router.subclients:
                sub.rpc.reset_session()

    def _register_metrics(self) -> None:
        reg = self.metrics
        for k, (host, server) in enumerate(zip(self.server_hosts,
                                               self.servers)):
            prefix = f"server{k}"
            reg.register(f"{prefix}.cpu", host.cpu.busy)
            reg.register(f"{prefix}.nic", host.nic.stats)
            reg.register(f"{prefix}.disk", self.disks[k].stats)
            reg.register(f"{prefix}.cache", self.caches[k].stats)
            reg.register(f"{prefix}.ops", server.stats)
            reg.register(f"{prefix}.rpc", server.rpc.stats)
            if server.checksums is not None:
                reg.register(f"{prefix}.integrity", server.integrity)
            if self.schedulers[k] is not None:
                reg.register(f"{prefix}.sched", self.schedulers[k].stats)
        for i, (host, router) in enumerate(zip(self.client_hosts,
                                               self.clients)):
            reg.register(f"client{i}.cpu", host.cpu.busy)
            reg.register(f"client{i}.nic", host.nic.stats)
            reg.register(f"client{i}.shard", router.stats)
            for k, sub in enumerate(router.subclients):
                reg.register(f"client{i}.s{k}.ops", sub.stats)
                reg.register(f"client{i}.s{k}.rpc", sub.rpc.stats)
                cache = getattr(sub, "cache", None)
                if cache is not None and hasattr(cache, "stats"):
                    reg.register(f"client{i}.s{k}.cache", cache.stats)

    def attach_sampler(self, interval_us: float = 50.0,
                       capacity: int = 8192) -> TimeSeriesSampler:
        """Continuous telemetry over every shard's gauges, mirroring
        :meth:`repro.cluster.Cluster.attach_sampler` (``shard.*`` names
        come from each client's router: shards currently marked down)."""
        if self.sampler is not None:
            raise RuntimeError("sampler already attached")
        sampler = TimeSeriesSampler(self.sim, interval_us=interval_us,
                                    capacity=capacity)
        for k, (host, server) in enumerate(zip(self.server_hosts,
                                               self.servers)):
            prefix = f"server{k}"
            sampler.probe_many(f"{prefix}.cpu", host.cpu.gauges())
            sampler.probe_many(f"{prefix}.nic", host.nic.gauges())
            sampler.probe_many(f"{prefix}.cache", self.caches[k].gauges())
            sampler.probe_many(f"{prefix}.rpc", server.rpc.gauges())
            if server.checksums is not None:
                sampler.probe_many(f"{prefix}.integrity",
                                   server.integrity_gauges())
            if self.schedulers[k] is not None:
                sampler.probe_many(f"{prefix}.sched",
                                   self.schedulers[k].gauges())
            sampler.probe_many(f"net.{prefix}", host.nic.port.gauges())
        for i, (host, router) in enumerate(zip(self.client_hosts,
                                               self.clients)):
            prefix = f"client{i}"
            sampler.probe_many(f"{prefix}.cpu", host.cpu.gauges())
            sampler.probe_many(f"{prefix}.nic", host.nic.gauges())
            sampler.probe_many(f"{prefix}.shard", router.gauges())
            for k, sub in enumerate(router.subclients):
                sampler.probe_many(f"{prefix}.s{k}.rpc", sub.rpc.gauges())
                ordma = getattr(sub, "ordma", None)
                if ordma is not None:
                    sampler.probe_many(f"{prefix}.s{k}.ordma",
                                       ordma.gauges())
                directory = getattr(sub, "directory", None)
                if directory is not None:
                    sampler.probe_many(f"{prefix}.s{k}.dir",
                                       directory.gauges())
            sampler.probe_many(f"net.{prefix}", host.nic.port.gauges())
        sampler.probe_many("net.switch", self.switch.gauges())
        self.metrics.register("timeseries", sampler)
        self.sampler = sampler
        return sampler

    # -- experiment setup -------------------------------------------------

    def create_file(self, name: str, size: int, warm: bool = True) -> None:
        """Create ``name`` in every server's namespace; ``warm=True``
        preloads each server's cache with the blocks it primaries or
        replicates (the Section 5 warm-cache setup, shard-scoped)."""
        n_blocks = 0
        for fs in self.filesystems:
            fs.create(name, size)
            n_blocks = fs.block_count(name)
        if not warm:
            return
        for index in range(n_blocks):
            chain = self.placement.replica_chain(name, index)
            for k in chain:
                self.caches[k].insert(
                    (name, index),
                    self.filesystems[k].block_content(name, index))

    # -- measurement helpers -----------------------------------------------

    def reset_measurements(self) -> None:
        """Open a fresh measurement window on every host CPU."""
        for host in self.server_hosts:
            host.cpu.reset_measurement()
        for host in self.client_hosts:
            host.cpu.reset_measurement()

    def server_cpu_utilization(self) -> float:
        """Mean per-server CPU utilization over the window (the quantity
        that saturates per machine in the scale-out sweep)."""
        utils = self.server_cpu_utilizations()
        return sum(utils) / len(utils)

    def server_cpu_utilizations(self) -> List[float]:
        return [host.cpu.utilization() for host in self.server_hosts]

    def client_cpu_utilization(self, index: int = 0) -> float:
        return self.client_hosts[index].cpu.utilization()

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (thin wrapper over ``sim.run``)."""
        self.sim.run(until=until)
