"""Placement policies: which server owns which block of which file.

Both policies place whole *stripe units* (``stripe_blocks`` contiguous
blocks) and derive every decision from ``sha256`` of the master seed —
the same derivation discipline as :class:`repro.sim.RandomStreams`, so a
placement is a pure function of ``(seed, shard params)`` that survives
interpreter restarts and ``PYTHONHASHSEED`` salting (byte-identical
campaign JSON depends on this).

* :class:`StripePlacement` — static round-robin striping from a seeded
  per-file base offset. The base spreads file homes over the servers so
  a many-small-files workload (PostMark) does not hammer shard 0.
* :class:`HashPlacement` — consistent hashing of ``(file, stripe unit)``
  over a virtual-node ring, so growing the server set relocates only
  ~1/N of the blocks (the property that matters for online reshard).

Replica chains put copy ``i`` on the ``i``-th next *distinct* server
after the primary (ring successors for the hash policy).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Tuple

from ...params import ShardParams


def _h63(text: str) -> int:
    """Stable 63-bit hash (sha256-derived, like RandomStreams seeds)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class Placement:
    """Base policy: maps (file, block) to a primary and its replicas."""

    def __init__(self, n_servers: int, stripe_blocks: int, replicas: int,
                 seed: int):
        if n_servers < 1:
            raise ValueError(f"need at least one server: {n_servers}")
        if stripe_blocks < 1:
            raise ValueError(f"bad stripe unit: {stripe_blocks}")
        if not 0 <= replicas < n_servers:
            raise ValueError(f"{replicas} replica(s) impossible with "
                             f"{n_servers} server(s)")
        self.n_servers = n_servers
        self.stripe_blocks = stripe_blocks
        self.replicas = replicas
        self.seed = seed

    def _unit(self, block_index: int) -> int:
        return block_index // self.stripe_blocks

    def shard_of(self, name: str, block_index: int) -> int:
        """The primary server for one block."""
        raise NotImplementedError

    def home_of(self, name: str) -> int:
        """The server holding a file's namespace state (opens, locks,
        delegations): the primary of its first block."""
        return self.shard_of(name, 0)

    def replica_chain(self, name: str, block_index: int) -> Tuple[int, ...]:
        """Primary followed by its replica servers, in failover order."""
        primary = self.shard_of(name, block_index)
        chain = [primary]
        step = 1
        while len(chain) <= self.replicas:
            chain.append((primary + step) % self.n_servers)
            step += 1
        return tuple(chain)


class StripePlacement(Placement):
    """Static block striping from a seeded per-file base offset."""

    def _base(self, name: str) -> int:
        return _h63(f"{self.seed}:stripe:{name}") % self.n_servers

    def shard_of(self, name: str, block_index: int) -> int:
        return (self._base(name) + self._unit(block_index)) % self.n_servers


class HashPlacement(Placement):
    """Seeded consistent hashing over a virtual-node ring."""

    def __init__(self, n_servers: int, stripe_blocks: int, replicas: int,
                 seed: int, vnodes: int = 64):
        super().__init__(n_servers, stripe_blocks, replicas, seed)
        if vnodes < 1:
            raise ValueError(f"bad vnode count: {vnodes}")
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for server in range(n_servers):
            for v in range(vnodes):
                points.append((_h63(f"{seed}:ring:{server}:{v}"), server))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def _successor(self, key_hash: int) -> int:
        """Index into the ring of the first point at or after the hash."""
        i = bisect.bisect_left(self._points, key_hash)
        return i % len(self._points)

    def shard_of(self, name: str, block_index: int) -> int:
        h = _h63(f"{self.seed}:key:{name}:{self._unit(block_index)}")
        return self._owners[self._successor(h)]

    def replica_chain(self, name: str, block_index: int) -> Tuple[int, ...]:
        """Ring successors: walk clockwise collecting distinct servers."""
        h = _h63(f"{self.seed}:key:{name}:{self._unit(block_index)}")
        i = self._successor(h)
        chain: List[int] = []
        for step in range(len(self._points)):
            server = self._owners[(i + step) % len(self._points)]
            if server not in chain:
                chain.append(server)
                if len(chain) > self.replicas:
                    break
        return tuple(chain)


def shard_config_error(shard: ShardParams, seed: int = 0) -> Optional[str]:
    """A human-readable reason ``shard`` cannot be wired, or ``None``.

    CLI entry points call this *before* building a
    :class:`~repro.nas.shard.cluster.ShardedCluster`, so a bad
    combination (``replicas >= n_servers``, zero stripe unit, unknown
    placement, ...) surfaces as one clear message and a nonzero exit
    instead of a traceback from deep inside cluster wiring.
    """
    try:
        make_placement(shard, seed)
    except ValueError as exc:
        return str(exc)
    return None


def make_placement(shard: ShardParams, seed: int) -> Placement:
    """Build the policy :class:`~repro.params.ShardParams` selects."""
    if shard.placement == "stripe":
        return StripePlacement(shard.n_servers, shard.stripe_blocks,
                               shard.replicas, seed)
    if shard.placement == "hash":
        return HashPlacement(shard.n_servers, shard.stripe_blocks,
                             shard.replicas, seed, vnodes=shard.hash_vnodes)
    raise ValueError(f"unknown placement {shard.placement!r}; "
                     f"one of ('stripe', 'hash')")
