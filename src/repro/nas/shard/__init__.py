"""Sharded multi-server NAS: striping, client-side routing, failover.

The paper's Fig. 7 shows the *single server* is what saturates once
ORDMA removes its CPU from the data path; this package is the scale-out
continuation. Files are striped over N servers by a seeded placement
policy (:mod:`placement`), each client routes block reads itself through
one transport per server (:mod:`router` — the Storm-style client-driven
dataplane that composes with client-initiated ORDMA), and
:class:`ShardedCluster` (:mod:`cluster`) wires N full servers — own
disk, file cache, scheduler — behind the existing switch.
"""

from .placement import (HashPlacement, Placement, StripePlacement,
                        make_placement)
from .router import ShardDownError, ShardRouter
from .cluster import SHARD_SYSTEMS, ShardedCluster

__all__ = [
    "HashPlacement", "Placement", "StripePlacement", "make_placement",
    "ShardDownError", "ShardRouter", "SHARD_SYSTEMS", "ShardedCluster",
]
