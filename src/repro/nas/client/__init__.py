"""The five evaluated NAS clients (Table 1 + Section 5)."""

from .base import FileHandle, NASClient
from .dafs import DAFSClient
from .directory import ORDMADirectory
from .nfs import NFSClient
from .nfs_hybrid import NFSHybridClient, RegistrationCache
from .nfs_prepost import NFSPrepostClient
from .nfs_remap import NFSRemapClient
from .odafs import ODAFSClient

__all__ = [
    "DAFSClient",
    "FileHandle",
    "NASClient",
    "NFSClient",
    "NFSHybridClient",
    "NFSPrepostClient",
    "NFSRemapClient",
    "ODAFSClient",
    "ORDMADirectory",
    "RegistrationCache",
]
