"""NFS with untagged RDDP-RPC and VM page re-mapping.

The second RDDP-RPC variant of Section 2.2: "Untagged RDDP-RPC transfers
are also possible and do not require pre-posting. The data payload is
placed in intermediate, page-aligned host buffers and the physical memory
pages of these buffers are re-mapped into the target buffer, provided
that the latter is also page-aligned." (This is the low-overhead NFS with
header splitting and VM page re-mapping evaluated in the authors' earlier
USENIX '02 study.)

Compared to the pre-posting client: no per-I/O NIC doorbell and no
pin/unpin of the user buffer, but a per-page re-mapping cost and a
page-alignment restriction — a misaligned tail still pays one copy.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...hw.host import Host
from ...hw.memory import PAGE_SIZE, Buffer
from ...proto.rpc import RPC_HEADER_BYTES
from ...proto.udp import UDPStack
from ..server.server import NFS_PORT
from .base import NASClient


class NFSRemapClient(NASClient):
    """Zero-copy NFS via header splitting + page flipping."""

    kernel = True

    def __init__(self, host: Host, server: str, port: int = NFS_PORT):
        stack = UDPStack(host)
        super().__init__(host, stack.socket(port), server)

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        if app_buffer is None:
            app_buffer = self.host.mem.alloc(nbytes, name="remap-anon")
        if app_buffer.size < nbytes:
            raise ValueError(
                f"user buffer too small: {app_buffer.size} < {nbytes}")
        span = self._start_span("read", name=name, offset=offset,
                                nbytes=nbytes)
        if span is not None:
            span.path = "rdma"
        yield from self._syscall()
        response = yield from self._call(
            "read", {"name": name, "offset": offset, "nbytes": nbytes,
                     "mode": "inline", "sg": True},
            rddp_untagged=True, span=span)
        if nbytes > 0 and not response.meta.get("rddp_untagged_done"):
            raise RuntimeError(
                "untagged read response was not header-split by the NIC")
        host_p = self.host.params.host
        full_pages, tail = divmod(nbytes, PAGE_SIZE)
        # Page-aligned user buffers (mem.alloc aligns) accept flipped
        # pages; the sub-page tail cannot be flipped and is copied.
        if full_pages:
            yield from self.cpu.execute(
                full_pages * host_p.remap_page_us, category="remap")
            self.stats.incr("pages_remapped", full_pages)
        if tail:
            yield from self.cpu.copy(tail, cached=True)
            self.stats.incr("tail_copies")
        if span is not None and (full_pages or tail):
            span.mark(self.host.name, "client.remap", pages=full_pages,
                      tail=tail)
        app_buffer.data = response.meta.get("rddp_payload")
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return app_buffer.data

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        # Outgoing path: scatter/gather DMA, as for the pre-posting client.
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes)
        yield from self._syscall()
        response = yield from self._call(
            "write", {"name": name, "offset": offset, "nbytes": nbytes},
            req_bytes=RPC_HEADER_BYTES + nbytes, span=span)
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return response.meta
