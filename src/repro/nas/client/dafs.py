"""DAFS client: user-level library over VI with polling completion.

Two data paths, as on the testbed:

* **direct reads** into registered application buffers (the Fig. 3/4/5
  streaming and Berkeley DB experiments) — server-initiated RDMA write,
  registration-cached, no syscalls, polling;
* **cached reads** through the user-level client file cache of
  [Addetia TR-14-01] (the Section 5.2 experiments interpose this cache
  between application and DAFS API). Misses fill whole cache blocks from
  the server; a multi-block request fans its misses out concurrently
  (the cache's internal read-ahead "up to the size of the application
  request" — Section 5.2).

Batch I/O (Section 2.2) is supported: one RPC requests a set of
server-issued RDMA transfers, amortizing the client's per-I/O RPC cost.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ...cache.block_cache import CacheBlock, ClientFileCache
from ...hw.host import Host
from ...hw.memory import Buffer
from ...hw.nic import NotifyMode
from ...params import KB
from ..server.server import DAFS_PORT
from ...proto.vi import VIEndpoint
from .base import NASClient
from .nfs_hybrid import RegistrationCache


class DAFSClient(NASClient):
    """User-level DAFS client."""

    kernel = False

    def __init__(self, host: Host, server: str, port: int = DAFS_PORT,
                 mode: NotifyMode = NotifyMode.POLL,
                 cache_blocks: int = 0, cache_block_size: int = 4 * KB,
                 rpc_read_mode: str = "direct"):
        endpoint = VIEndpoint(host, port, mode=mode)
        super().__init__(host, endpoint, server)
        self.registrations = RegistrationCache(host)
        self.rpc_read_mode = rpc_read_mode
        self.cache: Optional[ClientFileCache] = None
        self.cache_block_size = cache_block_size
        if cache_blocks > 0:
            self.cache = ClientFileCache(host, cache_block_size,
                                         cache_blocks,
                                         name=f"{host.name}.fcache")

    # -- direct path ---------------------------------------------------------

    def read_direct(self, name: str, offset: int, nbytes: int,
                    app_buffer: Optional[Buffer] = None,
                    span=None) -> Generator:
        """Read straight into a registered application buffer."""
        own_span = span is None
        if own_span:
            span = self._start_span("read", name=name, offset=offset,
                                    nbytes=nbytes)
        if span is not None and self.rpc_read_mode == "direct":
            span.path = "rdma"
        if app_buffer is None:
            app_buffer = self.host.mem.alloc(nbytes, name="dafs-anon")
        if app_buffer.size < nbytes:
            raise ValueError(
                f"application buffer too small: {app_buffer.size} < {nbytes}")
        args = {"name": name, "offset": offset, "nbytes": nbytes,
                "mode": self.rpc_read_mode}
        if self.rpc_read_mode == "direct":
            seg = yield from self.registrations.lookup(app_buffer)
            args["client_addr"] = seg.base
            args["client_cap"] = seg.capability
        response = yield from self._call("read", args, span=span)
        if self.rpc_read_mode != "direct":
            # In-line payload: copy from the communication buffer to the
            # destination (Section 5.2's 'RPC in-line read' client copy).
            yield from self.cpu.copy(nbytes, cached=False)
            if span is not None:
                span.mark(self.host.name, "client.copy", bytes=nbytes)
            app_buffer.data = response.data
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if own_span and span is not None:
            span.finish(self.host.name)
        return app_buffer.data

    # -- cached path ----------------------------------------------------------

    def _block_span(self, offset: int, nbytes: int) -> List[int]:
        bs = self.cache_block_size
        first = offset // bs
        last = (offset + max(nbytes, 1) - 1) // bs
        return list(range(first, last + 1))

    def _fill_block(self, name: str, index: int, block: CacheBlock,
                    span=None) -> Generator:
        """Fetch one cache block from the server into its frame."""
        yield from self._remote_fill_rpc(name, index, block, span=span)

    def _remote_fill_rpc(self, name: str, index: int, block: CacheBlock,
                         span=None) -> Generator:
        bs = self.cache_block_size
        if span is not None and span.path == "rpc" \
                and self.rpc_read_mode == "direct":
            span.path = "rdma"
        args = {"name": name, "offset": index * bs, "nbytes": bs,
                "mode": self.rpc_read_mode}
        if self.rpc_read_mode == "direct":
            # Cache frames are registered at mount: no per-I/O cost here.
            args["client_addr"] = block.buffer.base
            args["client_cap"] = None
        response = yield from self._call("read", args, span=span)
        if self.rpc_read_mode == "direct":
            data = block.buffer.data
        else:
            yield from self.cpu.copy(bs, cached=False)
            data = response.data
        self.cache.fill(block, data)
        response.meta["refs_name"] = name
        self._absorb_refs(response)
        self.stats.incr("rpc_fills")
        return data

    def _absorb_refs(self, response) -> None:
        """ODAFS hook: harvest piggybacked references (no-op for DAFS)."""

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        """Read via the client cache if configured, else directly."""
        if self.cache is None:
            data = yield from self.read_direct(name, offset, nbytes,
                                               app_buffer)
            return data
        span = self._start_span("read", name=name, offset=offset,
                                nbytes=nbytes)
        datas: List[Any] = []
        fills: List[Tuple[int, CacheBlock]] = []
        for index in self._block_span(offset, nbytes):
            yield from self.cpu.execute(self.proto.client_cache_op_us,
                                        category="cache")
            key = (name, index)
            block = self.cache.probe(key)
            if block is not None and block.data is not None:
                datas.append(block.data)
                self.stats.incr("cache_hits")
                continue
            block = self.cache.claim(key)
            fills.append((index, block))
            datas.append(block)  # placeholder, resolved after the fill
            self.stats.incr("cache_misses")
        if span is not None:
            span.mark(self.host.name, "client.cache",
                      hits=len(datas) - len(fills), misses=len(fills))
            if not fills:
                span.path = "local"
        if fills:
            # Internal read-ahead: fan out all misses concurrently.
            procs = [self.sim.process(self._fill_block(name, i, b,
                                                       span=span),
                                      name=f"{self.host.name}.fill")
                     for i, b in fills]
            yield self.sim.all_of(procs)
        resolved = [d.data if isinstance(d, CacheBlock) else d for d in datas]
        if app_buffer is not None:
            app_buffer.data = resolved[0] if len(resolved) == 1 \
                else tuple(resolved)
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return resolved[0] if len(resolved) == 1 else tuple(resolved)

    def _lock_barrier(self, name: str) -> None:
        if self.cache is not None:
            self.cache.invalidate_file(name)

    # -- writes ---------------------------------------------------------------

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        """Write through to the server (inline payload RPC); invalidates
        the affected client-cache blocks."""
        from ...proto.rpc import RPC_HEADER_BYTES
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes)
        response = yield from self._call(
            "write", {"name": name, "offset": offset, "nbytes": nbytes},
            req_bytes=RPC_HEADER_BYTES + nbytes, span=span)
        if self.cache is not None:
            for index in self._block_span(offset, nbytes):
                self.cache.invalidate((name, index))
        response.meta["refs_name"] = name
        self._absorb_refs(response)
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return response.meta

    # -- batch I/O (Section 2.2) ----------------------------------------------

    def read_batch(self, name: str,
                   extents: List[Tuple[int, int, Buffer]]) -> Generator:
        """One RPC, many server-issued RDMA transfers.

        ``extents`` is a list of (offset, nbytes, target buffer); a single
        RPC asks the server to RDMA-write each extent, amortizing the
        client's per-I/O RPC cost across the set.
        """
        span = self._start_span("read_batch", name=name,
                                extents=len(extents))
        if span is not None:
            span.path = "rdma"
        batch = []
        for offset, nbytes, buffer in extents:
            seg = yield from self.registrations.lookup(buffer)
            batch.append({"offset": offset, "nbytes": nbytes,
                          "client_addr": seg.base,
                          "client_cap": seg.capability})
        yield from self._call("read_batch", {"name": name,
                                             "extents": batch}, span=span)
        self.stats.incr("batch_reads")
        self.stats.incr("read_bytes", sum(e[1] for e in extents))
        if span is not None:
            span.finish(self.host.name)
        return [e[2].data for e in extents]
