"""NFS hybrid client: RPC over UDP + server-initiated RDMA data transfer.

The kernel client of Section 3.1: the wire protocol is extended to carry
remote memory pointers (like DAFS) while the NFS client API is unchanged
(like NFS-RDMA). The client registers user buffers with the NIC and caches
the registrations (Section 5.1: "Both DAFS and the NFS hybrid clients
avoid registering application buffers with the NIC on each I/O by caching
registrations"); the server writes data with a GM put, then replies.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ...hw.host import Host
from ...hw.memory import Buffer
from ...hw.tpt import Segment
from ...proto.rpc import RPC_HEADER_BYTES
from ...proto.udp import UDPStack
from ..server.server import NFS_PORT
from .base import NASClient


class RegistrationCache:
    """Caches buffer registrations so repeat I/O on a buffer is free."""

    def __init__(self, host: Host):
        self.host = host
        self._segments: Dict[int, Segment] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, buffer: Buffer) -> Generator:
        seg = self._segments.get(buffer.base)
        if seg is not None:
            self.hits += 1
            return seg
        self.misses += 1
        host_p = self.host.params.host
        yield from self.host.cpu.execute(
            buffer.page_count * host_p.register_page_us, category="register")
        seg = self.host.nic.tpt.register(buffer, pin=True)
        self._segments[buffer.base] = seg
        return seg

    def flush(self) -> Generator:
        host_p = self.host.params.host
        for seg in self._segments.values():
            yield from self.host.cpu.execute(
                seg.buffer.page_count * host_p.deregister_page_us,
                category="register")
            self.host.nic.tpt.deregister(seg)
        self._segments.clear()


class NFSHybridClient(NASClient):
    """Kernel NFS client whose reads arrive by server-initiated RDMA."""

    kernel = True

    def __init__(self, host: Host, server: str, port: int = NFS_PORT,
                 cache_registrations: bool = True):
        """``cache_registrations=False`` registers and deregisters the
        user buffer on every I/O — the on-the-fly penalty of Section 3,
        measured by the registration-cache ablation."""
        stack = UDPStack(host)
        super().__init__(host, stack.socket(port), server)
        self.cache_registrations = cache_registrations
        self.registrations = RegistrationCache(host)

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        if app_buffer is None:
            app_buffer = self.host.mem.alloc(nbytes, name="hybrid-anon")
        if app_buffer.size < nbytes:
            raise ValueError(
                f"user buffer too small: {app_buffer.size} < {nbytes}")
        span = self._start_span("read", name=name, offset=offset,
                                nbytes=nbytes)
        if span is not None:
            span.path = "rdma"
        yield from self._syscall()
        host_p = self.host.params.host
        if self.cache_registrations:
            seg = yield from self.registrations.lookup(app_buffer)
        else:
            yield from self.cpu.execute(
                app_buffer.page_count * host_p.register_page_us,
                category="register")
            seg = self.host.nic.tpt.register(app_buffer, pin=True)
        # Advertise the buffer in the RPC; the server RDMA-writes into it
        # and the RPC response then signals I/O completion (Fig. 2).
        yield from self._call(
            "read", {"name": name, "offset": offset, "nbytes": nbytes,
                     "mode": "direct", "client_addr": seg.base,
                     "client_cap": seg.capability}, span=span)
        if not self.cache_registrations:
            self.host.nic.tpt.deregister(seg)
            yield from self.cpu.execute(
                app_buffer.page_count * host_p.deregister_page_us,
                category="register")
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return app_buffer.data

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes)
        yield from self._syscall()
        response = yield from self._call(
            "write", {"name": name, "offset": offset, "nbytes": nbytes},
            req_bytes=RPC_HEADER_BYTES + nbytes, span=span)
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return response.meta
