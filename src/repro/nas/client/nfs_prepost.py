"""NFS pre-posting client: direct transfer file I/O via RDDP-RPC.

The kernel client of Section 3.2: it bypasses the buffer cache, pins the
user buffer, tags it at the NIC with the RPC transaction number (one
doorbell per I/O), and the NIC header-splits the response so the payload
lands directly in the user buffer — zero copies on the receive path.
Registration is on-the-fly per I/O (kernel clients cannot cache user
buffer registrations transparently — Section 3), which together with the
per-fragment header processing is why its client CPU curve flattens for
large blocks (Fig. 4).
"""

from __future__ import annotations

from typing import Generator, Optional

from ...hw.host import Host
from ...hw.memory import Buffer
from ...proto.rpc import RPC_HEADER_BYTES
from ...proto.udp import UDPStack
from ..server.server import NFS_PORT
from .base import NASClient


class NFSPrepostClient(NASClient):
    """Zero-copy kernel NFS client using pre-posted tagged buffers."""

    kernel = True

    def __init__(self, host: Host, server: str, port: int = NFS_PORT):
        stack = UDPStack(host)
        super().__init__(host, stack.socket(port), server)

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        if app_buffer is None:
            # Direct transfer needs a target user buffer to pre-post.
            app_buffer = self.host.mem.alloc(nbytes, name="prepost-anon")
        if app_buffer.size < nbytes:
            raise ValueError(
                f"user buffer too small: {app_buffer.size} < {nbytes}")
        span = self._start_span("read", name=name, offset=offset,
                                nbytes=nbytes)
        if span is not None:
            span.path = "rdma"
        yield from self._syscall()
        # rddp_buffer drives pin + tag pre-post + unpin inside the RPC
        # layer; sg=True asks the server for a scatter/gather (copy-free)
        # reply straight from its file cache pages.
        response = yield from self._call(
            "read", {"name": name, "offset": offset, "nbytes": nbytes,
                     "mode": "inline", "sg": True},
            rddp_buffer=app_buffer, span=span)
        if nbytes > 0 and not response.meta.get("rddp_split_done"):
            raise RuntimeError(
                "pre-posted read response was not header-split by the NIC")
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return app_buffer.data

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        # Outgoing path: scatter/gather DMA straight from the (pinned)
        # user buffer; no staging copy.
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes)
        yield from self._syscall()
        host_p = self.host.params.host
        pages = (nbytes + 4095) // 4096
        yield from self.cpu.execute(pages * host_p.register_page_us,
                                    category="register")
        response = yield from self._call(
            "write", {"name": name, "offset": offset, "nbytes": nbytes},
            req_bytes=RPC_HEADER_BYTES + nbytes, span=span)
        yield from self.cpu.execute(pages * host_p.deregister_page_us,
                                    category="register")
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return response.meta
