"""Common NAS client machinery: handles, delegations, RPC plumbing.

Each concrete client implements the same file API (open / read / write /
close / getattr) over a different data path; workloads and benchmarks are
written once against this interface.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ...hw.host import Host
from ...hw.memory import Buffer
from ...net.packet import Message
from ...proto.rpc import RPC_HEADER_BYTES, RPCClient
from ...sim import Counter, Span
from ..delegation import READ


class FileHandle:
    """Client-side open file state."""

    __slots__ = ("name", "size", "mtime", "delegated", "opens", "mode")

    def __init__(self, name: str, size: int, mtime: float,
                 delegated: bool, mode: str):
        self.name = name
        self.size = size
        self.mtime = mtime
        self.delegated = delegated
        self.mode = mode
        self.opens = 1


class NASClient:
    """Abstract base: RPC session + delegation handling."""

    #: Kernel-resident clients charge syscalls and the kernel RPC layer's
    #: extra per-call cost; the user-level DAFS client does not (Section 1:
    #: the kernel structure is less portable but the user-level structure
    #: needs no kernel support).
    kernel = True

    def __init__(self, host: Host, transport, server: str):
        self.host = host
        self.server = server
        self.rpc = RPCClient(host, transport, server, kernel=self.kernel)
        self.stats = Counter()
        self._handles: Dict[str, FileHandle] = {}

    # -- small helpers -----------------------------------------------------

    @property
    def sim(self):
        return self.host.sim

    @property
    def cpu(self):
        return self.host.cpu

    @property
    def proto(self):
        return self.host.params.proto

    def _syscall(self) -> Generator:
        if self.kernel:
            yield from self.cpu.syscall()

    def _start_span(self, op: str, **detail) -> Optional[Span]:
        """Open a request span when a tracer is attached, else ``None``."""
        tracer = self.sim.tracer
        if tracer is None:
            return None
        return tracer.start_span(self.host.name, op, **detail)

    def _call(self, proc: str, args: Optional[Dict[str, Any]] = None,
              req_bytes: int = RPC_HEADER_BYTES,
              rddp_buffer: Optional[Buffer] = None,
              rddp_untagged: bool = False,
              span: Optional[Span] = None) -> Generator:
        response: Message = yield from self.rpc.call(
            proc, args, req_bytes=req_bytes, rddp_buffer=rddp_buffer,
            rddp_untagged=rddp_untagged, span=span)
        for name in response.meta.get("recall", ()):  # piggybacked recalls
            handle = self._handles.get(name)
            if handle is not None:
                handle.delegated = False
                self.stats.incr("delegations_recalled")
        return response

    # -- namespace operations ----------------------------------------------

    def open(self, name: str, mode: str = READ) -> Generator:
        """Open a file; repeat opens under a delegation are local."""
        handle = self._handles.get(name)
        if handle is not None and handle.delegated and handle.mode == mode:
            yield from self.cpu.execute(self.proto.delegated_open_us,
                                        category="open")
            handle.opens += 1
            self.stats.incr("local_opens")
            return handle
        yield from self._syscall()
        span = self._start_span("open", name=name)
        response = yield from self._call("open", {"name": name,
                                                  "mode": mode}, span=span)
        handle = FileHandle(name, response.meta["size"],
                            response.meta["mtime"],
                            response.meta.get("delegation", False), mode)
        self._handles[name] = handle
        self.stats.incr("remote_opens")
        if span is not None:
            span.finish(self.host.name)
        return handle

    def close(self, name: str) -> Generator:
        """Close; local under a delegation, otherwise an RPC."""
        handle = self._handles.get(name)
        if handle is None:
            raise KeyError(f"close of unopened file {name!r}")
        handle.opens -= 1
        if handle.delegated:
            yield from self.cpu.execute(self.proto.delegated_open_us,
                                        category="open")
            self.stats.incr("local_closes")
            return
        yield from self._syscall()
        yield from self._call("close", {"name": name})
        if handle.opens <= 0:
            del self._handles[name]
        self.stats.incr("remote_closes")

    def getattr(self, name: str) -> Generator:
        """Fetch a file's attributes (size, mtime) via RPC."""
        yield from self._syscall()
        response = yield from self._call("getattr", {"name": name})
        return {"size": response.meta["size"],
                "mtime": response.meta["mtime"]}

    def lock(self, name: str, mode: str = "exclusive") -> Generator:
        """Acquire an advisory whole-file lock (blocks until granted).

        Mixing ORDMA- and RPC-based access weakens atomicity to one
        memory word; explicit locks restore UNIX file I/O semantics
        (Section 4.2.2)."""
        yield from self._syscall()
        yield from self._call("lock", {"name": name, "lock_mode": mode})
        # A lock is a consistency barrier: locally cached blocks of the
        # file may predate other clients' writes, so drop them.
        self._lock_barrier(name)
        self.stats.incr("locks")

    def _lock_barrier(self, name: str) -> None:
        """Hook: invalidate client-cached state for ``name`` (overridden
        by caching clients)."""

    def unlock(self, name: str) -> Generator:
        """Release an advisory lock taken with :meth:`lock`."""
        yield from self._syscall()
        yield from self._call("unlock", {"name": name})
        self.stats.incr("unlocks")

    def create(self, name: str, size: int) -> Generator:
        """Create a file of ``size`` bytes on the server."""
        yield from self._syscall()
        yield from self._call("create", {"name": name, "size": size})

    def remove(self, name: str) -> Generator:
        """Remove a file from the server namespace."""
        yield from self._syscall()
        yield from self._call("remove", {"name": name})

    # -- data operations (concrete clients implement) ---------------------

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        """Read ``nbytes`` at ``offset``; returns the payload object."""
        raise NotImplementedError

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        """Write ``nbytes`` at ``offset`` from an application buffer."""
        raise NotImplementedError

    def read_async(self, name: str, offset: int, nbytes: int,
                   app_buffer: Optional[Buffer] = None):
        """Issue a read as a concurrent process (aio-style read-ahead)."""
        return self.sim.process(
            self.read(name, offset, nbytes, app_buffer),
            name=f"{self.host.name}.aio")
