"""Optimistic DAFS client.

Extends the DAFS client with the three ODAFS principles (Section 4.2):

(a) a directory of remote references to server cache memory, built lazily
    from references the server piggybacks on every RPC response;
(b) no eager invalidation — a stale reference faults at the server NIC
    and only then gets dropped;
(c) every ORDMA is issued prepared to catch the recoverable exception and
    retry through RPC, whose response refreshes the reference.

Cache-block fills therefore try: client cache (handled by the base class)
-> ORDMA read of the server's cache block -> RPC.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...cache.block_cache import CacheBlock
from ...hw.host import Host
from ...hw.nic import NotifyMode
from ...hw.tpt import RemoteAccessFault
from ...integrity.checksum import block_checksum
from ...params import KB
from ...proto.ordma import ORDMAInitiator
from ..server.server import DAFS_PORT
from .dafs import DAFSClient


class ODAFSClient(DAFSClient):
    """DAFS client with client-initiated Optimistic RDMA."""

    def __init__(self, host: Host, server: str, port: int = DAFS_PORT,
                 mode: NotifyMode = NotifyMode.POLL,
                 cache_blocks: int = 64, cache_block_size: int = 4 * KB,
                 directory_capacity: int = 1 << 20,
                 directory_policy: str = "lru",
                 rpc_read_mode: str = "direct"):
        super().__init__(host, server, port=port, mode=mode,
                         cache_blocks=cache_blocks,
                         cache_block_size=cache_block_size,
                         rpc_read_mode=rpc_read_mode)
        if self.cache is None:
            raise ValueError("ODAFS client requires a client file cache")
        # Imported here to avoid a cycle at package import time.
        from .directory import ORDMADirectory
        self.directory = ORDMADirectory(directory_capacity,
                                        policy=directory_policy)
        self.ordma = ORDMAInitiator(host)

    # -- reference harvesting ------------------------------------------------

    def _absorb_refs(self, response) -> None:
        """Store piggybacked (block index, ref) pairs in the directory."""
        refs = response.meta.get("refs")
        if not refs:
            return
        name = response.meta.get("refs_name")
        for index, ref in refs:
            self.directory.insert((name, index), ref)
        self.stats.incr("refs_absorbed", len(refs))

    def _remote_fill_rpc(self, name, index, block, span=None) -> Generator:
        bs = self.cache_block_size
        if span is not None and span.path == "rpc" \
                and self.rpc_read_mode == "direct":
            span.path = "rdma"
        args = {"name": name, "offset": index * bs, "nbytes": bs,
                "mode": self.rpc_read_mode}
        if self.rpc_read_mode == "direct":
            args["client_addr"] = block.buffer.base
            args["client_cap"] = None
        response = yield from self._call("read", args, span=span)
        if self.rpc_read_mode == "direct":
            data = block.buffer.data
        else:
            yield from self.cpu.copy(bs, cached=False)
            data = response.data
        self.cache.fill(block, data)
        response.meta["refs_name"] = name
        self._absorb_refs(response)
        self.stats.incr("rpc_fills")
        return data

    def prefetch_refs(self, name: str) -> Generator:
        """Eager directory building (Section 4.2 principle (a)): fetch
        remote references for every cached block of ``name`` in one RPC.
        Returns the number of references learned."""
        response = yield from self._call("get_refs", {"name": name})
        refs = response.meta.get("refs", ())
        yield from self.cpu.execute(
            self.proto.ordma_dir_op_us * max(1, len(refs)) * 0.1,
            category="directory")
        self._absorb_refs(response)
        self.stats.incr("eager_ref_fetches")
        return len(refs)

    # -- the optimistic fill path ------------------------------------------------

    def _note_ordma_fault(self, key, span) -> None:
        """The single accounting point for a recoverable ORDMA fault:
        drops the stale reference (principle (b)) and keeps the fault
        counter and the tracer's span marks in lockstep."""
        self.directory.invalidate(key)
        self.stats.incr("ordma_faults")
        if span is not None:
            span.path = "ordma-fallback"
            span.mark(self.host.name, "ordma.fault")

    def _fill_block(self, name: str, index: int, block: CacheBlock,
                    span=None) -> Generator:
        key = (name, index)
        yield from self.cpu.execute(self.proto.ordma_dir_op_us,
                                    category="directory")
        ref = self.directory.probe(key)
        if span is not None:
            span.mark(self.host.name, "ordma.directory",
                      hit=ref is not None)
        if ref is not None:
            try:
                data = yield from self.ordma.read(ref, local=block.buffer,
                                                  span=span)
            except RemoteAccessFault:
                # Stale reference: drop it and guarantee success via RPC,
                # whose response carries a fresh reference (Section 4.2.1).
                self._note_ordma_fault(key, span)
            else:
                if ref.csum is not None:
                    # The server CPU never saw this transfer, so the
                    # *client* is the first place the bytes can be vetted:
                    # verify against the checksum piggybacked on the
                    # reference. A mismatch is handled exactly like a
                    # remote-access fault — drop the reference and fall
                    # back to RPC, where the server re-reads and verifies.
                    ip = self.host.params.integrity
                    yield from self.cpu.execute(
                        ip.checksum_op_us
                        + self.cache_block_size / ip.checksum_bw,
                        category="integrity")
                    if block_checksum(data) != ref.csum:
                        self.stats.incr("integrity_detected")
                        if span is not None:
                            span.mark(self.host.name, "integrity.detect",
                                      block=f"{name}#{index}")
                        self._note_ordma_fault(key, span)
                        yield from self._remote_fill_rpc(name, index, block,
                                                         span=span)
                        return
                self.cache.fill(block, data)
                yield from self.cpu.execute(self.proto.ordma_dir_op_us,
                                            category="directory")
                self.stats.incr("ordma_reads")
                if span is not None:
                    span.path = "ordma"
                return
        yield from self._remote_fill_rpc(name, index, block, span=span)

    # -- optimistic writes (library extension; see Section 4.2.2) -----------

    def write_optimistic(self, name: str, offset: int,
                         nbytes: int) -> Generator:
        """Write data via ORDMA when a reference is cached, then update
        file metadata with a (smaller) RPC.

        The paper identifies writes as a limitation of ORDMA because the
        associated file state must still be updated at the server; this
        implements that split: ORDMA moves the bytes, an explicit
        'write' RPC with no payload settles mtime/block status.
        """
        bs = self.cache_block_size
        if offset % bs or nbytes != bs:
            raise ValueError("optimistic writes operate on whole blocks")
        index = offset // bs
        key = (name, index)
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes, optimistic=True)
        yield from self.cpu.execute(self.proto.ordma_dir_op_us,
                                    category="directory")
        ref = self.directory.probe(key)
        if span is not None:
            span.mark(self.host.name, "ordma.directory",
                      hit=ref is not None)
        if ref is not None:
            try:
                # Move the bytes; the block's logical content is settled
                # by the metadata RPC below (version bump).
                yield from self.ordma.write(ref, None, span=span)
            except RemoteAccessFault:
                self._note_ordma_fault(key, span)
            else:
                # Metadata still needs the server CPU: a payload-free RPC.
                if span is not None:
                    span.path = "ordma"
                response = yield from self._call(
                    "write", {"name": name, "offset": offset, "nbytes": 0,
                              "ordma_blocks": [index]}, span=span)
                response.meta["refs_name"] = name
                self._absorb_refs(response)
                if self.cache is not None:
                    self.cache.invalidate(key)
                self.stats.incr("ordma_writes")
                if span is not None:
                    span.finish(self.host.name)
                return
        yield from self.write(name, offset, nbytes)
        if span is not None:
            span.finish(self.host.name)
