"""ORDMA reference directory.

ODAFS clients cache remote memory references piggybacked by the server
(Section 4.2, principle (a)). The directory is deliberately cheap to keep
— references live in "empty" block headers, so it can be much larger than
the data cache, ideally mapping the server's whole file cache
(Section 4.2.1). Entries are never eagerly invalidated; a stale reference
simply faults at the server NIC and is dropped then (principle (b)).

Replacement is pluggable: LRU (the paper's choice) or Multi-Queue (its
suggested improvement, since the directory sees a cache-miss-filtered
stream).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ...cache.lru import LRUPolicy
from ...cache.mq import MQPolicy
from ...cache.policy import ReplacementPolicy
from ...proto.ordma import RemoteRef
from ...sim import Counter


def make_policy(kind: str, capacity: int) -> ReplacementPolicy:
    """Build a directory replacement policy by name ("lru" or "mq")."""
    if kind == "lru":
        return LRUPolicy(capacity)
    if kind == "mq":
        return MQPolicy(capacity)
    raise ValueError(f"unknown directory policy {kind!r}")


class ORDMADirectory:
    """Bounded map of block keys to remote references."""

    def __init__(self, capacity: int, policy: str = "lru"):
        self.capacity = capacity
        self.policy_name = policy
        self._policy = make_policy(policy, capacity)
        self._refs: Dict[Hashable, RemoteRef] = {}
        self.stats = Counter()

    def __len__(self) -> int:
        return len(self._refs)

    def probe(self, key: Hashable) -> Optional[RemoteRef]:
        ref = self._refs.get(key)
        if ref is None:
            self.stats.incr("misses")
            return None
        self._policy.touch(key)
        self.stats.incr("hits")
        return ref

    def insert(self, key: Hashable, ref: RemoteRef) -> None:
        victim = self._policy.admit(key)
        if victim is not None:
            self._refs.pop(victim, None)
            self.stats.incr("evictions")
        self._refs[key] = ref

    def invalidate(self, key: Hashable) -> bool:
        """Drop a reference that faulted at the server."""
        if key not in self._refs:
            return False
        self._policy.remove(key)
        del self._refs[key]
        self.stats.incr("invalidations")
        return True

    def hit_ratio(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0

    def gauges(self):
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        resident reference count and cumulative invalidations (lazy drops
        after server-NIC faults)."""
        return {
            "size": lambda: float(len(self._refs)),
            "invalidations": lambda: float(
                self.stats.get("invalidations")),
        }
