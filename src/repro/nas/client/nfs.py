"""Standard NFS client: RPC over UDP, staged through the buffer cache.

This is the paper's baseline (Fig. 3: ~65 MB/s, client CPU saturated by
memory copying). Every read stages the payload in the kernel buffer cache:
one copy from network buffers into the cache, a second from the cache to
the user buffer, plus per-fragment protocol work in the NFS layer on top
of what the UDP stack already charged.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional

from ...hw.host import Host
from ...hw.memory import Buffer
from ...proto.rpc import RPC_HEADER_BYTES
from ...proto.udp import UDPStack
from ..server.server import NFS_PORT
from .base import NASClient


class _BufferCache:
    """Minimal kernel buffer cache keyed by (file, offset, length)."""

    def __init__(self, capacity_entries: int):
        from ...cache.lru import LRUPolicy
        self.capacity = capacity_entries
        self._policy = LRUPolicy(capacity_entries)
        self._data = {}

    def probe(self, key):
        entry = self._data.get(key)
        if entry is not None:
            self._policy.touch(key)
        return entry

    def insert(self, key, data):
        victim = self._policy.admit(key)
        if victim is not None:
            self._data.pop(victim, None)
        self._data[key] = data

    def invalidate_file(self, name):
        for key in [k for k in self._data if k[0] == name]:
            self._policy.remove(key)
            del self._data[key]


class NFSClient(NASClient):
    """FreeBSD-style NFS client over UDP (readahead handled by callers)."""

    kernel = True

    def __init__(self, host: Host, server: str, port: int = NFS_PORT,
                 bcache_entries: int = 256, transport=None):
        """``transport`` overrides the default UDP socket — e.g. a framed
        TCP connection for the UDP-vs-TCP transport ablation."""
        if transport is None:
            transport = UDPStack(host).socket(port)
        super().__init__(host, transport, server)
        self.bcache = _BufferCache(bcache_entries)

    def _lock_barrier(self, name: str) -> None:
        self.bcache.invalidate_file(name)

    def _fragments(self, nbytes: int) -> int:
        payload = self.host.params.net.ip_fragment_payload
        return max(1, math.ceil(nbytes / payload))

    def read(self, name: str, offset: int, nbytes: int,
             app_buffer: Optional[Buffer] = None) -> Generator:
        span = self._start_span("read", name=name, offset=offset,
                                nbytes=nbytes)
        yield from self._syscall()
        host_p = self.host.params.host
        key = (name, offset, nbytes)
        yield from self.cpu.execute(host_p.buffer_cache_op_us,
                                    category="bcache")
        cached = self.bcache.probe(key)
        if cached is None:
            response = yield from self._call(
                "read", {"name": name, "offset": offset, "nbytes": nbytes,
                         "mode": "inline"}, span=span)
            # NFS receive path: per-fragment mbuf-chain work, then the
            # staging copy from network buffers into the buffer cache.
            yield from self.cpu.execute(
                self._fragments(nbytes) * self.proto.nfs_frag_us,
                category="nfs")
            yield from self.cpu.copy(nbytes, cached=False)
            if span is not None:
                span.mark(self.host.name, "client.copy", bytes=nbytes)
            cached = response.data
            self.bcache.insert(key, cached)
            self.stats.incr("remote_reads")
        else:
            if span is not None:
                span.path = "local"
            self.stats.incr("cache_reads")
        # Copy from the buffer cache to the user buffer.
        yield from self.cpu.copy(nbytes, cached=False)
        if app_buffer is not None:
            app_buffer.data = cached
        self.stats.incr("reads")
        self.stats.incr("read_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return cached

    def write(self, name: str, offset: int, nbytes: int) -> Generator:
        span = self._start_span("write", name=name, offset=offset,
                                nbytes=nbytes)
        yield from self._syscall()
        host_p = self.host.params.host
        # Copy user buffer into the buffer cache, then transmit inline.
        yield from self.cpu.execute(host_p.buffer_cache_op_us,
                                    category="bcache")
        yield from self.cpu.copy(nbytes, cached=False)
        yield from self.cpu.execute(
            self._fragments(nbytes) * self.proto.nfs_frag_us, category="nfs")
        if span is not None:
            span.mark(self.host.name, "client.copy", bytes=nbytes)
        response = yield from self._call(
            "write", {"name": name, "offset": offset, "nbytes": nbytes},
            req_bytes=RPC_HEADER_BYTES + nbytes, span=span)
        self.bcache.invalidate_file(name)
        self.stats.incr("writes")
        self.stats.incr("write_bytes", nbytes)
        if span is not None:
            span.finish(self.host.name)
        return response.meta
