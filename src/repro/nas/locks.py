"""Advisory whole-file locks.

ORDMA guarantees only single-word atomicity, while RPC-based access locks
the file for the duration of the I/O; ODAFS therefore offers ORDMA's
weaker semantics, and "for UNIX file I/O semantics, client applications
should explicitly lock files for the duration of I/O" (Section 4.2.2).
This module provides those explicit locks: server-side advisory locks in
shared ("read") or exclusive ("write") mode, granted FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Event, Simulator

SHARED = "shared"
EXCLUSIVE = "exclusive"


class LockTable:
    """FIFO-fair shared/exclusive locks, one per file name."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: name -> (mode, holders)
        self._held: Dict[str, Tuple[str, List[str]]] = {}
        #: name -> queue of (mode, owner, event)
        self._waiting: Dict[str, Deque[Tuple[str, str, Event]]] = {}

    def holders(self, name: str) -> List[str]:
        held = self._held.get(name)
        return list(held[1]) if held else []

    def mode(self, name: str) -> Optional[str]:
        held = self._held.get(name)
        return held[0] if held else None

    def acquire(self, name: str, owner: str, mode: str = EXCLUSIVE) -> Event:
        """Request the lock; the returned event fires when granted."""
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"bad lock mode: {mode}")
        event = Event(self.sim)
        queue = self._waiting.setdefault(name, deque())
        queue.append((mode, owner, event))
        self._grant(name)
        return event

    def release(self, name: str, owner: str) -> None:
        held = self._held.get(name)
        if held is None or owner not in held[1]:
            raise KeyError(f"{owner!r} does not hold a lock on {name!r}")
        held[1].remove(owner)
        if not held[1]:
            del self._held[name]
        self._grant(name)

    def _grant(self, name: str) -> None:
        queue = self._waiting.get(name)
        if not queue:
            return
        while queue:
            mode, owner, event = queue[0]
            held = self._held.get(name)
            if held is None:
                self._held[name] = (mode, [owner])
            elif held[0] == SHARED and mode == SHARED:
                held[1].append(owner)
            else:
                break  # head of queue must wait (FIFO fairness)
            queue.popleft()
            event.succeed(name)
        if not queue:
            self._waiting.pop(name, None)
