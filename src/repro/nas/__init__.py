"""NAS systems: servers (NFS/DAFS/ODAFS) and the five evaluated clients."""

from .client.base import FileHandle, NASClient
from .client.dafs import DAFSClient
from .client.directory import ORDMADirectory
from .client.nfs import NFSClient
from .client.nfs_hybrid import NFSHybridClient, RegistrationCache
from .client.nfs_prepost import NFSPrepostClient
from .client.nfs_remap import NFSRemapClient
from .client.odafs import ODAFSClient
from .delegation import READ, WRITE, DelegationTable
from .server.filecache import ServerBlock, ServerFileCache
from .server.server import (
    DAFS_PORT,
    NFS_PORT,
    BaseFileServer,
    DAFSServer,
    NFSServer,
    ODAFSServer,
)

__all__ = [
    "BaseFileServer",
    "DAFSClient",
    "DAFSServer",
    "DAFS_PORT",
    "DelegationTable",
    "FileHandle",
    "NASClient",
    "NFSClient",
    "NFSHybridClient",
    "NFSPrepostClient",
    "NFSRemapClient",
    "NFSServer",
    "NFS_PORT",
    "ODAFSClient",
    "ODAFSServer",
    "ORDMADirectory",
    "READ",
    "RegistrationCache",
    "ServerBlock",
    "ServerFileCache",
    "WRITE",
]
