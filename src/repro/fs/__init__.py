"""Server file system substrate: namespace, block content, disk model."""

from .disk import Disk
from .files import BlockContent, FileSystem, FileSystemError, Inode

__all__ = ["BlockContent", "Disk", "FileSystem", "FileSystemError", "Inode"]
