"""Parametric disk model.

All the paper's experiments run against a warm server file cache, so the
disk matters only for the cold-cache ablations (low ORDMA success rate —
Section 4.2.2) and for completeness of the server read path. The model is
a single-spindle latency + bandwidth server with FIFO queueing.
"""

from __future__ import annotations

from typing import Generator

from ..params import StorageParams
from ..sim import Counter, Resource, Simulator


class DiskError(RuntimeError):
    """An I/O failed even after the driver's internal retries."""


class Disk:
    """One disk: fixed average positioning latency plus transfer time."""

    def __init__(self, sim: Simulator, params: StorageParams,
                 name: str = "disk"):
        self.sim = sim
        self.params = params
        self.name = name
        self._spindle = Resource(sim, capacity=1, name=name)
        self.stats = Counter()
        #: Fault-injection state (repro.faults.DiskFaults); ``None`` means
        #: a perfect disk and the access path pays no checks.
        self.faults = None

    def read(self, nbytes: int) -> Generator:
        """Read ``nbytes`` from a random position."""
        yield from self._access(nbytes, "reads")

    def write(self, nbytes: int) -> Generator:
        """Write ``nbytes`` at a random position."""
        yield from self._access(nbytes, "writes")

    def _access(self, nbytes: int, counter: str) -> Generator:
        if nbytes < 0:
            raise ValueError(f"negative disk I/O size: {nbytes}")
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "disk-io-start", op=counter,
                                 bytes=nbytes)
        attempts = 0
        while True:
            failed = False
            extra_us = 0.0
            if self.faults is not None:
                failed, extra_us = self.faults.io_plan()
            req = self._spindle.request()
            yield req
            try:
                yield self.sim.timeout(self.params.disk_latency_us
                                       + nbytes / self.params.disk_bw)
                if extra_us > 0.0:
                    yield self.sim.timeout(extra_us)
            finally:
                self._spindle.release(req)
            if not failed:
                break
            # Transient error: the driver retries the whole access, each
            # attempt paying full positioning + transfer time again.
            attempts += 1
            self.stats.incr("io_errors")
            if attempts > self.faults.max_retries:
                raise DiskError(
                    f"{self.name}: {counter} I/O of {nbytes} bytes failed "
                    f"after {attempts} attempts")
        self.stats.incr(counter)
        self.stats.incr("bytes", nbytes)
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "disk-io-complete", op=counter,
                                 bytes=nbytes)
