"""Server-side file system namespace.

Files are modelled as inodes plus logical block content. A block's content
is the tuple ``(file name, block index, version)`` — enough for end-to-end
data-integrity checks across every transfer path (copies, RDMA, ORDMA)
without shuffling real bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

BlockContent = Tuple[str, int, int]


class FileSystemError(RuntimeError):
    """Namespace misuse: duplicate create, missing file, bad range."""


class Inode:
    """One file's metadata."""

    __slots__ = ("name", "size", "mtime", "block_versions")

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self.mtime = 0.0
        #: Per-block version counters, bumped on write (sparse dict).
        self.block_versions: Dict[int, int] = {}

    def version_of(self, block_index: int) -> int:
        return self.block_versions.get(block_index, 0)


class FileSystem:
    """The server's exported namespace."""

    def __init__(self, block_size: int):
        if block_size <= 0:
            raise FileSystemError(f"bad block size: {block_size}")
        self.block_size = block_size
        self._files: Dict[str, Inode] = {}

    def create(self, name: str, size: int) -> Inode:
        if name in self._files:
            raise FileSystemError(f"file exists: {name!r}")
        if size < 0:
            raise FileSystemError(f"negative size: {size}")
        inode = Inode(name, size)
        self._files[name] = inode
        return inode

    def lookup(self, name: str) -> Inode:
        inode = self._files.get(name)
        if inode is None:
            raise FileSystemError(f"no such file: {name!r}")
        return inode

    def exists(self, name: str) -> bool:
        return name in self._files

    def remove(self, name: str) -> None:
        if name not in self._files:
            raise FileSystemError(f"no such file: {name!r}")
        del self._files[name]

    def names(self) -> List[str]:
        return list(self._files)

    # -- block content ------------------------------------------------------

    def block_count(self, name: str) -> int:
        inode = self.lookup(name)
        return (inode.size + self.block_size - 1) // self.block_size

    def block_content(self, name: str, block_index: int) -> BlockContent:
        """The logical content of one block (what DMA engines move)."""
        inode = self.lookup(name)
        if not 0 <= block_index < self.block_count(name):
            raise FileSystemError(
                f"block {block_index} out of range for {name!r}")
        return (name, block_index, inode.version_of(block_index))

    def write_block(self, name: str, block_index: int,
                    now: float = 0.0) -> BlockContent:
        """Apply a write: bump the block version and mtime."""
        inode = self.lookup(name)
        if not 0 <= block_index < self.block_count(name):
            raise FileSystemError(
                f"block {block_index} out of range for {name!r}")
        inode.block_versions[block_index] = inode.version_of(block_index) + 1
        inode.mtime = now
        return self.block_content(name, block_index)

    def blocks_in_range(self, name: str, offset: int,
                        nbytes: int) -> List[int]:
        inode = self.lookup(name)
        if offset < 0 or nbytes < 0 or offset + nbytes > inode.size:
            raise FileSystemError(
                f"range [{offset}, {offset + nbytes}) outside {name!r} "
                f"of size {inode.size}")
        if nbytes == 0:
            return []
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        return list(range(first, last + 1))
