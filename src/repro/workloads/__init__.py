"""Workloads driving the evaluation: streaming, Berkeley DB, PostMark,
multi-client small I/O."""

from .bdb import BerkeleyDBJoinWorkload
from .postmark import PostMarkWorkload
from .sequential import SequentialReadWorkload
from .sfs import SFSWorkload
from .smallio import MultiClientReadWorkload

__all__ = [
    "BerkeleyDBJoinWorkload",
    "MultiClientReadWorkload",
    "PostMarkWorkload",
    "SFSWorkload",
    "SequentialReadWorkload",
]
