"""Multi-client server-throughput workload (Fig. 7).

Section 5.2: two clients sequentially read a large file, warm in the
server cache, twice, using a large application block size. Application
reads larger than the client cache block trigger the cache's internal
read-ahead up to the request size, so the *network* I/O unit is the cache
block size — swept 4 KB .. 64 KB. Server throughput is measured during the
second pass, when the clients' caches still miss (file >> cache) but, for
ODAFS, every block's remote reference is already in the directory, so the
second pass runs entirely over client-initiated ORDMA with no server CPU.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..cluster import Cluster
from ..sim import LatencyStats


class MultiClientReadWorkload:
    """N clients streaming the same warm file through their caches.

    ``latency`` (optional) collects per-application-read response times
    during the measured final pass — the client-scaling sweep plots its
    percentiles against client count (queueing delay at a loaded server,
    Section 2.3).
    """

    def __init__(self, cluster: Cluster, file_name: str, file_size: int,
                 app_block_size: int, passes: int = 2,
                 latency: Optional[LatencyStats] = None):
        if file_size % app_block_size:
            raise ValueError(
                "file size must be a multiple of the app block size")
        self.cluster = cluster
        self.file_name = file_name
        self.file_size = file_size
        self.app_block_size = app_block_size
        self.passes = passes
        self.latency = latency

    def run(self) -> Dict[str, float]:
        """Run to completion; returns the measured-pass metrics dict."""
        return self.cluster.sim.run_process(self._main())

    def _one_pass(self, client, record: bool = False) -> Generator:
        n = self.file_size // self.app_block_size
        sim = self.cluster.sim
        for i in range(n):
            start = sim.now
            yield from client.read(self.file_name,
                                   i * self.app_block_size,
                                   self.app_block_size)
            if record and self.latency is not None:
                self.latency.record(sim.now - start)

    def _client_main(self, client, barrier_events) -> Generator:
        yield from client.open(self.file_name)
        for p in range(self.passes):
            yield from self._one_pass(client,
                                      record=(p == self.passes - 1))
            # Synchronize between passes so the measured pass is clean.
            mine, everyone = barrier_events[p]
            mine.succeed(None)
            yield everyone

    def _main(self) -> Generator:
        cluster = self.cluster
        sim = cluster.sim
        clients = cluster.clients
        barriers = []
        for p in range(self.passes):
            events = [(sim.event()) for _ in clients]
            barriers.append(events)
        # Per-client view: (my event, all-of event for the pass).
        pass_allofs = [sim.all_of(events) for events in barriers]
        procs = []
        for idx, client in enumerate(clients):
            view = [(barriers[p][idx], pass_allofs[p])
                    for p in range(self.passes)]
            procs.append(sim.process(self._client_main(client, view),
                                     name=f"smallio-{idx}"))
        # Measure the final pass: wait for the next-to-last barrier.
        if self.passes > 1:
            yield pass_allofs[self.passes - 2]
        cluster.reset_measurements()
        start = sim.now
        yield sim.all_of(procs)
        elapsed = sim.now - start
        measured_bytes = len(clients) * self.file_size
        return {
            "throughput_mb_s": measured_bytes / elapsed,
            "server_cpu": cluster.server_cpu_utilization(),
            "client_cpus": [cluster.client_cpu_utilization(i)
                            for i in range(len(clients))],
        }
