"""Berkeley DB equality-join workload (Fig. 5).

Section 5.1: an application uses an embedded database (Berkeley DB) to
compute a simple equality join over 60 KB records. The database pre-computes
the set of required pages and prefetches them asynchronously, maintaining a
window of outstanding I/Os into its user-level page cache. To vary the
application's computational demand, a configurable amount of each record is
copied from the db cache into the application buffer (1 byte .. 60 KB); the
plot is application throughput versus bytes copied per record.

The model reproduces that structure: network I/O at a fixed 64 KB transfer
size into cache buffers, plus a per-record application copy charged at the
host's application-copy bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator

from ..cluster import Cluster
from ..params import KB


class BerkeleyDBJoinWorkload:
    """Join driver: prefetch records, copy a slice of each to the app."""

    RECORD_BYTES = 60 * KB      #: logical record size (Section 5.1)
    IO_BYTES = 64 * KB          #: network transfer size for one record

    def __init__(self, cluster: Cluster, file_name: str, n_records: int,
                 copy_bytes: int, window: int = 8, client_index: int = 0,
                 warmup_fraction: float = 0.1):
        if not 0 <= copy_bytes <= self.RECORD_BYTES:
            raise ValueError(
                f"copy_bytes out of range: {copy_bytes}")
        self.cluster = cluster
        self.file_name = file_name
        self.n_records = n_records
        self.copy_bytes = copy_bytes
        self.window = window
        self.client_index = client_index
        self.warmup_fraction = warmup_fraction

    @property
    def file_size(self) -> int:
        return self.n_records * self.IO_BYTES

    def run(self) -> Dict[str, float]:
        return self.cluster.sim.run_process(self._main())

    def _fetch_and_process(self, client, record: int, buffer) -> Generator:
        """One record: fetch into the db cache, then the app-side copy."""
        yield from client.read(self.file_name, record * self.IO_BYTES,
                               self.IO_BYTES, buffer)
        if self.copy_bytes:
            yield from client.host.cpu.execute(
                self.copy_bytes / client.host.params.host.app_copy_bw,
                category="app")

    def _main(self) -> Generator:
        cluster = self.cluster
        sim = cluster.sim
        client = cluster.clients[self.client_index]
        yield from client.open(self.file_name)
        warmup = max(1, int(self.n_records * self.warmup_fraction))
        buffers = [client.host.mem.alloc(self.IO_BYTES, name=f"dbc{j}")
                   for j in range(self.window)]
        pending = deque()
        measure_start = None
        for record in range(self.n_records):
            if record == warmup:
                cluster.reset_measurements()
                measure_start = sim.now
            if len(pending) >= self.window:
                yield pending.popleft()
            proc = sim.process(
                self._fetch_and_process(client, record,
                                        buffers[record % self.window]),
                name="db-record")
            pending.append(proc)
        while pending:
            yield pending.popleft()
        elapsed = sim.now - measure_start
        measured = (self.n_records - warmup) * self.RECORD_BYTES
        yield from client.close(self.file_name)
        return {
            "throughput_mb_s": measured / elapsed,
            "client_cpu": cluster.client_cpu_utilization(self.client_index),
            "records": self.n_records,
        }
