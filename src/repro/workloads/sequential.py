"""Streaming read-ahead workload (Fig. 3 / Fig. 4).

A simple client reads a file sequentially with asynchronous read-ahead and
no data processing, exactly as Section 5.1: a window of outstanding I/Os
at a configurable application block size, the file warm in the server
cache, kernel readahead off (the client itself drives all concurrency).

Measurements start after a warm-up fraction so reported throughput and
client CPU utilization are steady-state.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator

from ..cluster import Cluster


class SequentialReadWorkload:
    """Asynchronous sequential reads over one client."""

    def __init__(self, cluster: Cluster, file_name: str, file_size: int,
                 block_size: int, window: int = 8,
                 client_index: int = 0, warmup_fraction: float = 0.1):
        if file_size % block_size:
            raise ValueError("file size must be a multiple of the block size")
        self.cluster = cluster
        self.file_name = file_name
        self.file_size = file_size
        self.block_size = block_size
        self.window = window
        self.client_index = client_index
        self.warmup_fraction = warmup_fraction

    def run(self) -> Dict[str, float]:
        """Execute to completion; returns throughput and utilization."""
        result = self.cluster.sim.run_process(self._main())
        return result

    def _main(self) -> Generator:
        cluster = self.cluster
        client = cluster.clients[self.client_index]
        sim = cluster.sim
        yield from client.open(self.file_name)
        n_blocks = self.file_size // self.block_size
        warmup_blocks = max(1, int(n_blocks * self.warmup_fraction))
        buffers = [client.host.mem.alloc(self.block_size,
                                         name=f"app{j}")
                   for j in range(self.window)]
        pending = deque()
        measure_start = None
        for i in range(n_blocks):
            if i == warmup_blocks:
                cluster.reset_measurements()
                measure_start = sim.now
            if len(pending) >= self.window:
                oldest = pending.popleft()
                yield oldest
            proc = client.read_async(self.file_name, i * self.block_size,
                                     self.block_size,
                                     buffers[i % self.window])
            pending.append(proc)
        while pending:
            yield pending.popleft()
        elapsed = sim.now - measure_start
        measured_bytes = (n_blocks - warmup_blocks) * self.block_size
        yield from client.close(self.file_name)
        return {
            "throughput_mb_s": measured_bytes / elapsed,
            "client_cpu": cluster.client_cpu_utilization(self.client_index),
            "server_cpu": cluster.server_cpu_utilization(),
            "blocks": n_blocks,
        }
