"""SPECsfs-like mixed NFS operation workload.

Section 2.3 cites Martin & Culler's finding that "file server throughput
in NFS workloads modeled by SPECsfs is most sensitive to host CPU
overhead" — the premise behind attacking per-I/O cost. This workload
generates the classic SFS operation mix (lookups, getattrs, reads,
writes) from multiple clients against one server and measures delivered
operation throughput, so the sensitivity experiment
(:func:`repro.bench.ablations.ablation_overhead_sensitivity`) can sweep
host overhead parameters and reproduce that qualitative result.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..cluster import Cluster
from ..params import KB

#: Default operation mix, patterned after the SFS97 distribution
#: (collapsed to the operations our servers implement).
DEFAULT_MIX: List[Tuple[str, float]] = [
    ("lookup", 0.27),
    ("getattr", 0.22),
    ("read", 0.32),
    ("write", 0.19),
]


class SFSWorkload:
    """Closed-loop multi-client NFS operation mix."""

    def __init__(self, cluster: Cluster, n_files: int = 128,
                 file_size: int = 8 * KB, ops_per_client: int = 500,
                 mix: Optional[List[Tuple[str, float]]] = None,
                 seed_stream: str = "sfs"):
        self.cluster = cluster
        self.n_files = n_files
        self.file_size = file_size
        self.ops_per_client = ops_per_client
        self.mix = mix or DEFAULT_MIX
        total = sum(weight for _, weight in self.mix)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"operation mix must sum to 1.0, got {total}")
        self.rng = cluster.rand.stream(seed_stream)
        self.op_counts: Dict[str, int] = {}

    def setup(self) -> None:
        for i in range(self.n_files):
            self.cluster.create_file(self._name(i), self.file_size)

    def _name(self, i: int) -> str:
        return f"sfs{i:05d}"

    def _pick_op(self) -> str:
        roll = self.rng.random()
        acc = 0.0
        for op, weight in self.mix:
            acc += weight
            if roll < acc:
                return op
        return self.mix[-1][0]

    def _one_op(self, client) -> Generator:
        name = self._name(self.rng.randrange(self.n_files))
        op = self._pick_op()
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if op == "lookup":
            yield from client._call("lookup", {"name": name})
        elif op == "getattr":
            yield from client.getattr(name)
        elif op == "read":
            offset = self.rng.randrange(
                max(1, self.file_size // (4 * KB))) * 4 * KB
            yield from client.read(name, offset, 4 * KB)
        else:  # write
            offset = self.rng.randrange(
                max(1, self.file_size // (4 * KB))) * 4 * KB
            yield from client.write(name, offset, 4 * KB)

    def _client_loop(self, client) -> Generator:
        for _ in range(self.ops_per_client):
            yield from self._one_op(client)

    def run(self) -> Dict[str, float]:
        cluster = self.cluster
        sim = cluster.sim

        def main():
            cluster.reset_measurements()
            start = sim.now
            procs = [sim.process(self._client_loop(client),
                                 name="sfs-client")
                     for client in cluster.clients]
            yield sim.all_of(procs)
            elapsed = sim.now - start
            total_ops = self.ops_per_client * len(cluster.clients)
            return {
                "ops_per_s": total_ops / elapsed * 1e6,
                "server_cpu": cluster.server_cpu_utilization(),
                "op_counts": dict(self.op_counts),
            }

        return sim.run_process(main())
