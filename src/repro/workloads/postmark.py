"""PostMark-style small-file workload (Fig. 6).

Section 5.2 models a latency-sensitive client by configuring PostMark
[Katcher TR-3022] for read-only transactions on a set of small files:
each transaction opens a file (local after the first open thanks to the
open delegation), synchronously reads it (4 KB average), and closes it
(also local). The file set exceeds the client cache; the client-cache hit
ratio is swept by varying the cache size against a fixed file set.

The full PostMark shape (creates/deletes, appends, read-write mixes) is
also implemented for library completeness; the Fig. 6 configuration is
``transactions_only with read_ratio=1.0``.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..cluster import Cluster
from ..params import KB


class PostMarkWorkload:
    """Synchronous open/IO/close transactions over a small-file set."""

    def __init__(self, cluster: Cluster, n_files: int,
                 file_size: int = 4 * KB, transactions: int = 2000,
                 warmup_transactions: Optional[int] = None,
                 read_ratio: float = 1.0,
                 create_delete_ratio: float = 0.0,
                 client_index: int = 0, seed_stream: str = "postmark"):
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError(f"bad read ratio: {read_ratio}")
        if not 0.0 <= create_delete_ratio < 1.0:
            raise ValueError(f"bad create/delete ratio: {create_delete_ratio}")
        self.cluster = cluster
        self.n_files = n_files
        self.file_size = file_size
        self.transactions = transactions
        #: Default warm-up: one full pass over the file set, so every file
        #: has been opened (delegation granted) and — for ODAFS — its
        #: remote references collected, as in the paper's setup.
        self.warmup_transactions = (warmup_transactions
                                    if warmup_transactions is not None
                                    else 2 * n_files)
        self.read_ratio = read_ratio
        self.create_delete_ratio = create_delete_ratio
        self.client_index = client_index
        self.rng = cluster.rand.stream(seed_stream)
        self._created = 0

    def setup(self) -> None:
        """Create the file set on the server (outside measurement)."""
        for i in range(self.n_files):
            self.cluster.create_file(self._name(i), self.file_size)

    def _name(self, i: int) -> str:
        return f"pm{i:06d}"

    def run(self) -> Dict[str, float]:
        return self.cluster.sim.run_process(self._main())

    def _one_transaction(self, client, warming: bool,
                         index: int) -> Generator:
        proto = client.host.params.proto
        # Per-transaction application work (path handling, bookkeeping).
        yield from client.host.cpu.execute(proto.app_txn_us, category="app")
        if (not warming and self.create_delete_ratio
                and self.rng.random() < self.create_delete_ratio):
            name = f"pmx{self._created:06d}"
            self._created += 1
            yield from client.create(name, self.file_size)
            yield from client.remove(name)
            return "create_delete"
        if warming:
            name = self._name(index % self.n_files)  # full coverage pass
        else:
            name = self._name(self.rng.randrange(self.n_files))
        yield from client.open(name)
        if self.rng.random() < self.read_ratio:
            yield from client.read(name, 0, self.file_size)
            kind = "read"
        else:
            yield from client.write(name, 0, self.file_size)
            kind = "write"
        yield from client.close(name)
        return kind

    def _main(self) -> Generator:
        cluster = self.cluster
        client = cluster.clients[self.client_index]
        sim = cluster.sim
        for i in range(self.warmup_transactions):
            yield from self._one_transaction(client, warming=True, index=i)
        cluster.reset_measurements()
        if hasattr(client, "cache") and client.cache is not None:
            client.cache.stats.reset()
        start = sim.now
        kinds = {"read": 0, "write": 0, "create_delete": 0}
        for i in range(self.transactions):
            kind = yield from self._one_transaction(client, warming=False,
                                                    index=i)
            kinds[kind] += 1
        elapsed = sim.now - start
        result = {
            "txns_per_s": self.transactions / elapsed * 1e6,
            "server_cpu": cluster.server_cpu_utilization(),
            "client_cpu": cluster.client_cpu_utilization(self.client_index),
            "reads": kinds["read"],
            "writes": kinds["write"],
            "creates_deletes": kinds["create_delete"],
        }
        cache = getattr(client, "cache", None)
        if cache is not None:
            result["client_cache_hit_ratio"] = cache.hit_ratio()
        return result
